"""End-to-end key extraction from a square-and-multiply victim (the
classic code-path side channel, carried over the micro-op cache).

The victim computes ``base ** key mod (2^31 - 1)`` with the textbook
left-to-right square-and-multiply loop: every exponent bit costs one
``square``; a *one* bit additionally calls ``multiply``.  The two
routines live at different addresses and therefore occupy different
micro-op cache sets -- so, on an SMT processor with a competitively
shared micro-op cache (AMD Zen, Section V-B), a sibling-thread spy that
probes *multiply's* sets sees its probe latency spike exactly when a
one bit is processed.

The attack mirrors how such key extractions work in practice:

1. the spy calibrates iteration timings on its own copy of the binary
   with chosen keys (all-ones, alternating) to learn the durations of
   1-iterations and 0-iterations;
2. during the victim's real run it records a timeline of probe
   latencies;
3. offline, spikes mark the one bits and inter-spike gaps count the
   zero bits between them.

The arithmetic is real (Mersenne-prime modulus, so reduction needs
only shifts/ands/adds our ISA has); tests verify the victim's result
against Python's ``pow`` and the recovered key against the truth.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.errors import ConfigError
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.session import AttackSession

#: Mersenne modulus: products of 31-bit operands fit in 62 bits, and
#: reduction is (x & M) + (x >> 31), twice, plus one conditional
#: subtract -- all expressible in the synthetic ISA.
MODULUS = (1 << 31) - 1

_SQUARE_ARENA = 0x60_0000  # square's code: sets 0..7
_MULTIPLY_ARENA = 0x62_0000  # multiply's code: sets 16..23
_SPY_ARENA = 0x44_0000

_MUL_SETS = tuple(range(16, 24))
_SQ_SETS = tuple(range(0, 8))
#: The spy probes the sets of multiply's *limb loop* (regions 3..7),
#: which the routine re-walks every call -- the strongest contention.
_PROBE_SETS = tuple(range(19, 24))


@dataclass
class ExtractionResult:
    """Outcome of one key-recovery run."""

    true_key: int
    recovered_key: int
    nbits: int
    modexp_result: int
    spikes: List[int]

    @property
    def bit_errors(self) -> int:
        """Hamming distance between truth and recovery."""
        return bin(self.true_key ^ self.recovered_key).count("1")

    @property
    def exact(self) -> bool:
        """True when the key was recovered perfectly."""
        return self.true_key == self.recovered_key


class ModexpVictim(AttackSession):
    """Builds and drives the victim + spy program pair."""

    def __init__(
        self,
        nbits: int = 16,
        spy_samples: int = 500,
        limb_rounds: int = 8,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        if not 4 <= nbits <= 63:
            raise ConfigError("nbits must be 4..63")
        self.nbits = nbits
        self.spy_samples = spy_samples
        self.limb_rounds = limb_rounds
        super().__init__(config or CPUConfig.zen(), noise)

    # ------------------------------------------------------------------
    # program construction

    def _emit_modmul_routine(
        self, asm: Assembler, name: str, arena: int, first_set: int,
        operand: str,
    ) -> None:
        """One modular-multiply routine: ``r1 = r1 * operand mod M``.

        The real arithmetic occupies the first regions; a limb loop
        (standing in for multi-precision work) walks the tail regions
        ``limb_rounds`` times, giving the routine the repeated-fetch
        behaviour of a real bignum inner loop.  The code spans eight
        consecutive 32-byte regions => eight consecutive cache sets.
        """
        region = lambda k: arena + (first_set + k) * 32

        asm.org(region(0))
        asm.label(name)
        asm.emit(enc.mov("r5", "r1"))
        asm.emit(enc.alu("imul", "r5", operand))  # <= 62 bits
        asm.emit(enc.mov("r6", "r5"))
        asm.emit(enc.alu_imm("shr", "r6", 31))
        asm.emit(enc.alu("and", "r5", "r3"))
        asm.emit(enc.jmp(f"{name}_fold"))

        asm.org(region(1))
        asm.label(f"{name}_fold")
        asm.emit(enc.alu("add", "r5", "r6"))
        asm.emit(enc.mov("r6", "r5"))
        asm.emit(enc.alu_imm("shr", "r6", 31))
        asm.emit(enc.alu("and", "r5", "r3"))
        asm.emit(enc.alu("add", "r5", "r6"))
        asm.emit(enc.jmp(f"{name}_cond"))

        asm.org(region(2))
        asm.label(f"{name}_cond")
        asm.emit(enc.cmp_reg("r5", "r3"))
        asm.emit(enc.jcc("b", f"{name}_limbs"))
        asm.emit(enc.alu("sub", "r5", "r3"))
        asm.emit(enc.jmp(f"{name}_limbs"))

        asm.org(region(3))
        asm.label(f"{name}_limbs")
        asm.emit(enc.mov("r1", "r5"))
        asm.emit(enc.mov_imm("r9", self.limb_rounds))
        asm.emit(enc.jmp(f"{name}_limb_top"))

        bank2 = lambda k: arena + 1024 + (first_set + k) * 32
        asm.org(region(4))
        asm.label(f"{name}_limb_top")
        asm.emit(enc.alu_imm("add", "r6", 3))
        asm.emit(enc.nop(5))
        asm.emit(enc.nop(5))
        asm.emit(enc.jmp(f"{name}_l5"))
        asm.org(region(5))
        asm.label(f"{name}_l5")
        asm.emit(enc.alu_imm("xor", "r6", 0x1D))
        asm.emit(enc.nop(5))
        asm.emit(enc.nop(5))
        asm.emit(enc.jmp(f"{name}_l6"))
        asm.org(region(6))
        asm.label(f"{name}_l6")
        asm.emit(enc.alu_imm("sub", "r6", 1))
        asm.emit(enc.nop(5))
        asm.emit(enc.nop(5))
        asm.emit(enc.jmp(f"{name}_l7"))
        asm.org(region(7))
        asm.label(f"{name}_l7")
        asm.emit(enc.alu_imm("or", "r6", 7))
        asm.emit(enc.jmp(f"{name}_b4"))
        # second half of the loop body: one way-stride higher, so the
        # routine holds *two* ways of each of its sets while looping
        asm.org(bank2(4))
        asm.label(f"{name}_b4")
        asm.emit(enc.alu_imm("add", "r6", 5))
        asm.emit(enc.nop(5))
        asm.emit(enc.jmp(f"{name}_b5"))
        asm.org(bank2(5))
        asm.label(f"{name}_b5")
        asm.emit(enc.alu_imm("xor", "r6", 0x2B))
        asm.emit(enc.nop(5))
        asm.emit(enc.jmp(f"{name}_b6"))
        asm.org(bank2(6))
        asm.label(f"{name}_b6")
        asm.emit(enc.alu_imm("sub", "r6", 2))
        asm.emit(enc.nop(5))
        asm.emit(enc.jmp(f"{name}_b7"))
        asm.org(bank2(7))
        asm.label(f"{name}_b7")
        asm.emit(enc.dec("r9"))
        asm.emit(enc.jcc("nz", f"{name}_limb_top"))
        asm.emit(enc.ret())

    def build_program(self):
        from repro.core.exploitgen import FootprintSpec, _emit_regions, neutral_set

        asm = Assembler()
        asm.reserve("spy_log", 16 * (self.spy_samples + 1))
        asm.reserve("victim_done", 8)
        # debug aid: per-iteration victim timestamps (harness-side
        # ground truth for tests; the spy never reads this)
        asm.reserve("victim_iters", 8 * 70)

        # Victim routines (square: sets 0..7; multiply: sets 16..23).
        self._emit_modmul_routine(asm, "fn_square", _SQUARE_ARENA,
                                  _SQ_SETS[0], "r1")
        self._emit_modmul_routine(asm, "fn_multiply", _MULTIPLY_ARENA,
                                  _MUL_SETS[0], "r2")

        # Victim main loop (r2 = base, r7 = key, r4 = bit index).
        asm.org(0x40_0000 + 26 * 32)
        asm.label("victim")
        # spin-up: give the sibling spy time to warm its probe before
        # the first exponent bit is processed (a real victim would not
        # be so courteous; a real spy simply waits for the victim's
        # process to start, which our fixed-start SMT run cannot model)
        asm.emit(enc.mov_imm("r0", 6000))
        asm.label("v_spin")
        asm.emit(enc.dec("r0"))
        asm.emit(enc.jcc("nz", "v_spin"))
        asm.emit(enc.mov_imm("r1", 1))
        asm.emit(enc.mov_imm("r3", MODULUS, width=64))
        asm.emit(enc.mov_imm("r4", self.nbits - 1))
        asm.emit(enc.mov_imm("r13", asm.resolve("victim_iters"), width=64))
        asm.label("v_loop")
        asm.emit(enc.rdtsc("r14"))
        asm.emit(enc.store("r14", "r13"))
        asm.emit(enc.alu_imm("add", "r13", 8))
        asm.emit(enc.call("fn_square"))
        asm.emit(enc.mov("r8", "r7"))
        asm.emit(enc.alu("shr", "r8", "r4"))
        asm.emit(enc.alu_imm("and", "r8", 1))
        asm.emit(enc.test_reg("r8", "r8"))
        asm.emit(enc.jcc("z", "v_skip"))
        asm.emit(enc.call("fn_multiply"))
        asm.label("v_skip")
        # inter-iteration work (message formatting, loop bookkeeping of
        # a real bignum library): paces iterations so they span several
        # spy sampling periods
        asm.emit(enc.mov_imm("r0", 150))
        asm.label("v_pace")
        asm.emit(enc.dec("r0"))
        asm.emit(enc.jcc("nz", "v_pace"))
        asm.emit(enc.test_reg("r4", "r4"))
        asm.emit(enc.jcc("z", "v_done"))
        asm.emit(enc.dec("r4"))
        asm.emit(enc.jmp("v_loop"))
        asm.label("v_done")
        asm.emit(enc.mov_imm("r10", asm.resolve("victim_done"), width=64))
        asm.emit(enc.rdtsc("r11"))
        asm.emit(enc.store("r11", "r10"))
        asm.emit(enc.halt())

        # Spy: timestamped probe loop over multiply's sets.
        # cheap-to-fetch probe: the spy needs a short sampling period,
        # so no LCP padding and a single NOP per region
        # all eight ways: the victim's routine only brings one line
        # per set, so the spy must leave it no spare way to land in
        spy_spec = FootprintSpec(
            _PROBE_SETS, 8, _SPY_ARENA,
            nops_per_region=1, lcp_per_nop=0, jmp_lcp=0,
        )
        prolog = _SPY_ARENA + 9 * spy_spec.way_stride + neutral_set(spy_spec) * 32
        asm.org(prolog)
        asm.label("spy")
        asm.emit(enc.mov_imm("r12", self.spy_samples))
        asm.emit(enc.mov_imm("r11", asm.resolve("spy_log"), width=64))
        asm.label("spy_loop")
        asm.emit(enc.rdtsc("r14"))
        asm.emit(enc.jmp("spyp_r0"))
        _emit_regions(asm, "spyp", spy_spec, "spy_end")
        asm.org(prolog + spy_spec.way_stride)
        asm.label("spy_end")
        asm.emit(enc.rdtsc("r15"))
        asm.emit(enc.alu("sub", "r15", "r14"))
        asm.emit(enc.store("r14", "r11"))
        asm.emit(enc.store("r15", "r11", disp=8))
        asm.emit(enc.alu_imm("add", "r11", 16))
        asm.emit(enc.dec("r12"))
        asm.emit(enc.jcc("nz", "spy_loop"))
        asm.emit(enc.halt())

        from repro.lint.taint import SecretClaim

        # The exponent arrives in r7 at the victim's entry; every bit
        # conditionally calls fn_multiply -- the canonical secret-bit
        # jump.  The stores (iteration timestamps, done flag) pace a
        # tainted loop, so the store-buffer drain pattern leaks too.
        self._lint_secrets = [
            SecretClaim(
                name="exponent", entry="victim", register="r7",
                leaks_to=("dsb", "itlb", "sb"),
            )
        ]
        return asm.assemble(entry="victim")

    # ------------------------------------------------------------------
    # running

    def run_pair(self, key: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Run victim (key) and spy concurrently; returns the victim's
        modexp result and the spy's (timestamp, elapsed) samples."""
        base = 0x12345
        self._run_smt(
            ("victim", "spy"),
            regs=({"r2": base, "r7": key}, None),
        )
        result = self.core.read_reg("r1", thread_id=0)
        log = self.core.addr_of("spy_log")
        samples = []
        for i in range(self.spy_samples):
            stamp = self.core.read_mem(log + 16 * i)
            elapsed = self._elapsed(log + 16 * i + 8)
            samples.append((stamp, elapsed))
        return result, samples


class KeyExtractor:
    """Calibrates on chosen keys, then recovers an unknown key."""

    def __init__(self, nbits: int = 16, config: Optional[CPUConfig] = None,
                 noise: Optional[NoiseModel] = None):
        self.nbits = nbits
        self.config = config or CPUConfig.zen()
        self.noise = noise
        self.d_one: Optional[float] = None
        self.d_zero: Optional[float] = None
        self._victim: Optional[ModexpVictim] = None

    def reset(self) -> None:
        """Return to the just-constructed state: drop the fitted
        thresholds and reset the victim session (kept assembled for
        reuse).  Makes the extractor poolable via
        :class:`repro.session.SessionPool`."""
        self.d_one = None
        self.d_zero = None
        if self._victim is not None:
            self._victim.reset()

    def _victim_session(self) -> ModexpVictim:
        """The victim + spy pair, built once and reused via reset().

        A reset victim is byte-identical to a fresh one (the session
        layer's parity guarantee), so every run still starts from the
        same cold-cache state the extraction offsets were tuned for --
        without paying program assembly per run.
        """
        if self._victim is None:
            self._victim = ModexpVictim(nbits=self.nbits, config=self.config,
                                        noise=self.noise)
        else:
            self._victim.reset()
        return self._victim

    @staticmethod
    def _spikes(samples: List[Tuple[int, int]]) -> List[int]:
        """Timestamps of probe passes that observed a multiply's
        eviction burst.

        The baseline (all probes hitting) is the sample median; a
        multiply's wear-down evicts several spy lines at once, pushing
        the probe well above it.  Single leftover-eviction samples at
        the start of a zero iteration stay below the margin.
        """
        samples = samples[1:]  # drop the spy's cold warm-up pass
        active = sorted(e for _, e in samples if e > 0)
        if not active:
            return []
        baseline = active[len(active) // 2]
        threshold = baseline + 26
        if active[-1] <= threshold:
            return []
        return [t for t, e in samples if e > threshold]

    @staticmethod
    def _burst_leaders(spikes: List[int], min_gap: float) -> List[int]:
        leaders = []
        for t in spikes:
            if not leaders or t - leaders[-1] > min_gap:
                leaders.append(t)
        return leaders

    def _pattern_key(self, period: int) -> int:
        """A key whose one bits repeat every ``period`` positions,
        MSB-first (e.g. period 2 -> 1010..., period 3 -> 100100...)."""
        key = 0
        for i in range(self.nbits):
            if i % period == 0:
                key |= 1 << (self.nbits - 1 - i)
        return key

    def _leader_gap(self, key: int, min_gap: float) -> float:
        _, samples = self._victim_session().run_pair(key)
        spikes = self._spikes(samples)
        leaders = self._burst_leaders(spikes, min_gap=min_gap)
        gaps = [b - a for a, b in zip(leaders, leaders[1:])]
        if not gaps:
            raise RuntimeError(
                f"calibration key {key:#x} produced too few bursts"
            )
        return float(statistics.median(gaps))

    def calibrate(self) -> Tuple[float, float]:
        """Learn 1-iteration and 0-iteration durations from chosen-key
        runs on the attacker's own copy of the binary.

        Uses sparse patterns (1010..., 100100...) whose multiply bursts
        stay isolated: the leader gaps measure D1 + D0 and D1 + 2*D0
        respectively, which solve for both durations.
        """
        gap_a = self._leader_gap(self._pattern_key(2), min_gap=250)
        gap_b = self._leader_gap(self._pattern_key(3), min_gap=250)
        d_zero = max(gap_b - gap_a, 1.0)
        d_one = max(gap_a - d_zero, 1.0)
        self.d_one, self.d_zero = d_one, d_zero
        return self.d_one, self.d_zero

    def extract(self, key: int) -> ExtractionResult:
        """Run the victim with ``key`` and recover it from the spy's
        timeline.  The key's MSB must be set (standard for exponents)."""
        if key >> (self.nbits - 1) != 1:
            raise ConfigError("key MSB must be set")
        if self.d_one is None:
            self.calibrate()
        victim = self._victim_session()
        result, samples = victim.run_pair(key)
        spikes = self._spikes(samples)
        leaders = self._burst_leaders(spikes, min_gap=self.d_one * 0.6)

        bits: List[int] = []
        if leaders:
            bits.append(1)  # MSB: the first multiply
            # 1-iteration durations drift upward over a run as the
            # set contention heats up; track them adaptively so the
            # zero-count quantisation stays centred.
            d_one = self.d_one
            for a, b in zip(leaders, leaders[1:]):
                gap = b - a
                zeros = max(0, round((gap - d_one) / self.d_zero))
                bits.extend([0] * zeros)
                bits.append(1)
                implied = gap - zeros * self.d_zero
                if abs(implied - d_one) < self.d_zero / 2:
                    d_one = 0.6 * d_one + 0.4 * implied
        # bits after the last multiply are zeros; the key width is public
        if len(bits) > self.nbits:
            bits = bits[: self.nbits]
        bits.extend([0] * (self.nbits - len(bits)))

        recovered = 0
        for bit in bits:
            recovered = (recovered << 1) | bit
        return ExtractionResult(
            true_key=key,
            recovered_key=recovered,
            nbits=self.nbits,
            modexp_result=result,
            spikes=leaders,
        )
