"""Transient-execution attacks over the micro-op cache (Section VI).

Three attacks live here:

- :class:`UopCacheSpectreV1` -- the paper's variant-1: a bounds-check
  bypass whose disclosure primitive is the micro-op cache.  The
  transiently accessed secret steers a branch to either a tiger or a
  zebra *transmitter*; their fetch footprint survives the squash and
  the attacker reads it with a timed probe, bit by bit.
- :class:`ClassicSpectreV1` -- the baseline for Table II: the original
  Spectre-v1 with a FLUSH+RELOAD data-cache disclosure primitive over
  a 256-slot probe array.
- :class:`LfenceBypass` -- variant-2: a secret-dependent *indirect
  call* whose predicted target is fetched into the micro-op cache
  before dispatch, leaking past an LFENCE (Figure 10); CPUID, which
  stalls fetch itself, is the control that kills the signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.covert import ChannelReport
from repro.core.exploitgen import FootprintSpec, emit_chain, emit_probe, striped_sets
from repro.core.timing import ProbeTiming
from repro.cpu.config import CPUConfig
from repro.cpu.counters import PerfCounters
from repro.cpu.noise import NoiseModel
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession

RECV_ARENA = 0x44_0000
TTIGER_ARENA = 0x48_0000
TZEBRA_ARENA = 0x4C_0000
CAL_ARENA = 0x54_0000

ARRAY_BYTES = 1024


@dataclass
class AttackStats:
    """Outcome + cost of one complete leak (Table II columns)."""

    leaked: bytes
    secret: bytes
    total_cycles: int
    freq_ghz: float
    counters: PerfCounters

    @property
    def correct_bytes(self) -> int:
        """Bytes recovered exactly."""
        return sum(1 for a, b in zip(self.leaked, self.secret) if a == b)

    @property
    def byte_accuracy(self) -> float:
        """Fraction of secret bytes recovered."""
        return self.correct_bytes / len(self.secret) if self.secret else 0.0

    @property
    def bit_errors(self) -> int:
        """Bit-level errors across the secret."""
        errors = 0
        for a, b in zip(self.leaked, self.secret):
            errors += bin(a ^ b).count("1")
        return errors

    @property
    def seconds(self) -> float:
        """Simulated attack duration."""
        return self.total_cycles / (self.freq_ghz * 1e9)

    @property
    def bandwidth_kbps(self) -> float:
        """Leak rate in Kbit/s."""
        if not self.total_cycles:
            return 0.0
        return len(self.secret) * 8 / self.seconds / 1e3


class UopCacheSpectreV1(AttackSession):
    """Variant-1: bounds-check bypass + micro-op cache disclosure.

    The victim (Listing 4) returns ``array[i]`` after a bounds check
    against a flushable ``array_size``.  Out-of-bounds transient reads
    reach the adjacent ``secret``; the gadget masks out one bit and
    calls a tiger (bit 1) or zebra (bit 0) transmitter whose *fetch*
    leaves the footprint the attacker times.
    """

    def __init__(
        self,
        secret: bytes,
        nsets: int = 8,
        probe_ways: int = 8,
        transmit_ways: int = 4,
        samples: int = 4,
        deep_window: bool = False,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.secret = secret
        self.nsets = nsets
        self.probe_ways = probe_ways
        self.transmit_ways = transmit_ways
        self.samples = samples
        # deep_window: reach the bound through a flushed pointer
        # indirection (two dependent DRAM misses), roughly doubling the
        # transient window.  Needed when a defense (e.g. invisible
        # speculation) keeps the transiently read secret permanently
        # cold, so the secret-dependent branch resolves late on *every*
        # sample.  Real attacks build such windowing gadgets the same
        # way (Section II-E's "windowing gadget").
        self.deep_window = deep_window
        config = config or CPUConfig.skylake()
        # An attacker characterises the machine first: under
        # privilege-level partitioning, user code sees half the sets,
        # and the tiger/zebra geometry adapts (the paper's point that
        # partitioning does not stop this same-privilege attack).
        self.effective_sets = config.uop_cache_sets
        if config.privilege_partition_uop_cache:
            self.effective_sets //= 2
        super().__init__(config, noise)

    # ------------------------------------------------------------------

    def build_program(self):
        total = self.effective_sets
        nsets = min(self.nsets, total // 2)
        tiger_sets = striped_sets(nsets, total_sets=total)
        stride = total // nsets
        zebra_sets = striped_sets(
            nsets, offset=max(1, stride // 2), total_sets=total
        )
        asm = Assembler()
        asm.reserve("probe_result", 8)
        # array and secret must be adjacent: an out-of-bounds index
        # i >= ARRAY_BYTES transiently reads the secret.
        array_addr = asm.reserve(
            "array", ARRAY_BYTES + len(self.secret) + 64, align=64
        )
        asm.label_at("secret", array_addr + ARRAY_BYTES)
        asm.data("array_size", (ARRAY_BYTES).to_bytes(8, "little"))

        # Receiver probe + architectural calibration conflict function.
        probe_spec = FootprintSpec(
            tiger_sets, self.probe_ways, RECV_ARENA, total_sets=total
        )
        cal_spec = FootprintSpec(
            tiger_sets, self.transmit_ways, CAL_ARENA, total_sets=total
        )
        emit_probe(asm, "probe", probe_spec, "probe_result")
        emit_chain(asm, "cal_conflict", cal_spec)
        # Transient transmitters (callable, return).  Unlike the
        # attacker's probes, these must be *cheap to fetch* so the
        # whole footprint lands inside the transient window: one NOP
        # per region and no length-changing prefixes.
        tiger_spec = FootprintSpec(
            tiger_sets, self.transmit_ways, TTIGER_ARENA,
            nops_per_region=1, lcp_per_nop=0, jmp_lcp=0,
            total_sets=total,
        )
        zebra_spec = FootprintSpec(
            zebra_sets, self.transmit_ways, TZEBRA_ARENA,
            nops_per_region=1, lcp_per_nop=0, jmp_lcp=0,
            total_sets=total,
        )
        emit_chain(asm, "send_one_t", tiger_spec, exit_kind="ret")
        emit_chain(asm, "send_zero_t", zebra_spec, exit_kind="ret")
        self._lint_claims = [
            ChainClaim("probe", probe_spec, "probe"),
            ChainClaim("cal_conflict", cal_spec, "tiger"),
            ChainClaim("send_one_t", tiger_spec, "tiger"),
            ChainClaim("send_zero_t", zebra_spec, "zebra"),
        ]
        self._lint_pairs = [
            PairClaim("send_one_t", "probe", "conflict"),
            PairClaim("cal_conflict", "probe", "conflict"),
            PairClaim("send_zero_t", "probe", "disjoint"),
        ]

        if self.deep_window:
            asm.data("array_size_ptr",
                     asm.resolve("array_size").to_bytes(8, "little"))

        # Victim (Listing 4 + bit-masking transmit gadget).
        # r1 = index, r2 = bit position.
        asm.org(0x40_0040)
        asm.label("victim")
        if self.deep_window:
            asm.emit(enc.mov_imm("r10", asm.resolve("array_size_ptr"),
                                 width=64))
            asm.emit(enc.load("r10", "r10"))
            asm.emit(enc.load("r3", "r10"))
        else:
            asm.emit(enc.mov_imm("r10", asm.resolve("array_size"), width=64))
            asm.emit(enc.load("r3", "r10"))
        asm.emit(enc.cmp_reg("r1", "r3"))
        asm.emit(enc.jcc("ae", "vf_oob"))
        asm.emit(enc.mov_imm("r9", asm.resolve("array"), width=64))
        asm.emit(enc.load("r4", "r9", index="r1", size=1))
        asm.emit(enc.alu("shr", "r4", "r2"))
        asm.emit(enc.alu_imm("and", "r4", 1))
        asm.emit(enc.test_reg("r4", "r4"))
        asm.emit(enc.jcc("z", "vf_zero"))
        asm.emit(enc.call("send_one_t"))
        asm.emit(enc.jmp("vf_done"))
        asm.label("vf_zero")
        asm.emit(enc.call("send_zero_t"))
        asm.label("vf_done")
        asm.emit(enc.ret())
        asm.label("vf_oob")
        asm.emit(enc.ret())

        # Attacker stubs.
        asm.align(64)
        asm.label("invoke_victim")
        asm.emit(enc.call("victim"))
        asm.emit(enc.halt())
        asm.align(64)
        asm.label("flush_size")
        asm.emit(enc.mov_imm("r13", asm.resolve("array_size"), width=64))
        asm.emit(enc.clflush("r13"))
        if self.deep_window:
            asm.emit(enc.mov_imm("r13", asm.resolve("array_size_ptr"),
                                 width=64))
            asm.emit(enc.clflush("r13"))
        asm.emit(enc.halt())

        # The secret lives in data adjacent to the array; the bounds
        # bypass makes the masked bit steer the tiger/zebra call, so
        # the taint preflight must see both transmitters as
        # secret-dependent fetch.
        self._lint_secrets = [
            SecretClaim(
                name="secret", entry="victim", label="secret",
                size=len(self.secret) or 1, leaks_to=("dsb", "itlb"),
            )
        ]

        prog = asm.assemble(entry="probe")
        return prog

    #: Public in-bounds indices with known values, used for training
    #: and for calibrating the classifier on the *full* attack flow.
    TRAIN_INDEX = 16  # array[16] == 0x00
    CAL_ONE_INDEX = 17  # array[17] == 0xFF

    def _install_data(self) -> None:
        base = self.core.addr_of("secret")
        for i, byte in enumerate(self.secret):
            self.core.write_mem(base + i, byte, size=1)
        self.core.write_mem(
            self.core.addr_of("array") + self.CAL_ONE_INDEX, 0xFF, size=1
        )

    def _train(self, rounds: int = 2) -> None:
        for _ in range(rounds):
            self._call("invoke_victim", regs={"r1": self.TRAIN_INDEX, "r2": 0})

    def _episode(self, index: int, bit: int) -> int:
        """One prime/flush/victim/probe round; returns the probe time."""
        self._train()
        self._call("probe")  # prime
        self._call("flush_size")
        self._call("invoke_victim", regs={"r1": index, "r2": bit})
        return self._probe_time()

    def calibrate(self, rounds: int = 8) -> ProbeTiming:
        """Calibrate on the full attack flow using *public* in-bounds
        array values whose bits the attacker knows -- exercising the
        exact code paths (including victim-code cache pollution) that
        real attack episodes will."""
        self._install_data()
        hits, misses = [], []
        for _ in range(rounds):
            hits.append(self._episode(self.TRAIN_INDEX, 0))  # value 0x00
            misses.append(self._episode(self.CAL_ONE_INDEX, 0))  # value 0xFF
        return self._fit(hits, misses)

    def leak_bit(self, byte_index: int, bit: int) -> int:
        """Leak one bit of ``secret[byte_index]`` transiently."""
        if self.classifier is None:
            self.calibrate()
        oob_index = ARRAY_BYTES + byte_index
        # Warm-up episode: the first transient access pulls the secret
        # into the L1D so later episodes resolve the secret-dependent
        # branch inside the transient window.
        self._episode(oob_index, bit)
        samples = []
        for _ in range(self.samples):
            samples.append(self._episode(oob_index, bit))
        return self.classifier.vote(samples)

    def leak(self, nbytes: Optional[int] = None) -> AttackStats:
        """Leak the whole secret bit by bit; returns Table-II stats."""
        if self.classifier is None:
            self.calibrate()
        nbytes = nbytes if nbytes is not None else len(self.secret)
        self.total_cycles = 0
        before = self.core.counters().snapshot()
        leaked = bytearray()
        for k in range(nbytes):
            value = 0
            for bit in range(8):
                value |= self.leak_bit(k, bit) << bit
            leaked.append(value)
        counters = self.core.counters().delta(before)
        return AttackStats(
            leaked=bytes(leaked),
            secret=self.secret[:nbytes],
            total_cycles=self.total_cycles,
            freq_ghz=self.config.freq_ghz,
            counters=counters,
        )

    def channel_report(self, stats: AttackStats) -> ChannelReport:
        """Express an attack run in Table-I channel terms."""
        return ChannelReport(
            bits_sent=len(stats.secret) * 8,
            bit_errors=stats.bit_errors,
            total_cycles=stats.total_cycles,
            freq_ghz=stats.freq_ghz,
            payload_bytes=len(stats.secret),
            timing=self.timing,
        )


class ClassicSpectreV1(AttackSession):
    """The original Spectre-v1 with a FLUSH+RELOAD LLC disclosure
    primitive (Table II's baseline).

    ``lfence=True`` inserts Intel's recommended fence after the bounds
    check, which *does* defeat this attack (and does not defeat
    variant-2 -- the asymmetry Figure 10 demonstrates).
    """

    STRIDE = 512

    def __init__(
        self,
        secret: bytes,
        rounds_per_byte: int = 2,
        lfence: bool = False,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.secret = secret
        self.rounds_per_byte = rounds_per_byte
        self.lfence = lfence
        super().__init__(config or CPUConfig.skylake(), noise)

    def build_program(self):
        asm = Assembler()
        probe_bytes = 256 * self.STRIDE
        asm.reserve("reload_results", 256 * 8)
        array_addr = asm.reserve(
            "array1", ARRAY_BYTES + len(self.secret) + 64, align=64
        )
        asm.label_at("secret", array_addr + ARRAY_BYTES)
        asm.data("array_size", (ARRAY_BYTES).to_bytes(8, "little"))
        asm.reserve("array2", probe_bytes, align=4096)

        # Victim: y = array2[array1[i] * 512] behind a bounds check.
        asm.label("victim")
        asm.emit(enc.mov_imm("r10", asm.resolve("array_size"), width=64))
        asm.emit(enc.load("r3", "r10"))
        asm.emit(enc.cmp_reg("r1", "r3"))
        asm.emit(enc.jcc("ae", "v_oob"))
        if self.lfence:
            asm.emit(enc.lfence())
        asm.emit(enc.mov_imm("r9", asm.resolve("array1"), width=64))
        asm.emit(enc.load("r4", "r9", index="r1", size=1))
        asm.emit(enc.alu_imm("shl", "r4", 9))
        asm.emit(enc.mov_imm("r8", asm.resolve("array2"), width=64))
        asm.emit(enc.load("r5", "r8", index="r4"))
        asm.label("v_oob")
        asm.emit(enc.ret())

        asm.align(64)
        asm.label("invoke_victim")
        asm.emit(enc.call("victim"))
        asm.emit(enc.halt())

        # Flush loop: clflush every probe slot, then array_size.
        asm.align(64)
        asm.label("flush_all")
        asm.emit(enc.mov_imm("r10", 0))
        asm.emit(enc.mov_imm("r11", asm.resolve("array2"), width=64))
        asm.label("fl_top")
        asm.emit(enc.clflush("r11"))
        asm.emit(enc.alu_imm("add", "r11", self.STRIDE))
        asm.emit(enc.alu_imm("add", "r10", 1))
        asm.emit(enc.cmp_imm("r10", 256))
        asm.emit(enc.jcc("b", "fl_top"))
        asm.emit(enc.mov_imm("r13", asm.resolve("array_size"), width=64))
        asm.emit(enc.clflush("r13"))
        asm.emit(enc.halt())

        # Reload loop: time a load of every slot, store the latencies.
        asm.align(64)
        asm.label("reload_all")
        asm.emit(enc.mov_imm("r10", 0))  # slot index
        asm.emit(enc.mov_imm("r11", asm.resolve("array2"), width=64))
        asm.emit(enc.mov_imm("r12", asm.resolve("reload_results"), width=64))
        asm.label("rl_top")
        asm.emit(enc.rdtsc("r14"))
        # Data-dependency serialisation (the classic FLUSH+RELOAD
        # idiom): derive a zero from the timestamp and fold it into
        # the load address, so the load cannot issue before RDTSC and
        # the closing RDTSC cannot read before the load completes.
        asm.emit(enc.mov("r7", "r14"))
        asm.emit(enc.alu_imm("and", "r7", 0))
        asm.emit(enc.load("r5", "r11", index="r7", size=1))
        asm.emit(enc.rdtsc("r15"))
        asm.emit(enc.alu("sub", "r15", "r14"))
        asm.emit(enc.store("r15", "r12"))
        asm.emit(enc.alu_imm("add", "r11", self.STRIDE))
        asm.emit(enc.alu_imm("add", "r12", 8))
        asm.emit(enc.alu_imm("add", "r10", 1))
        asm.emit(enc.cmp_imm("r10", 256))
        asm.emit(enc.jcc("b", "rl_top"))
        asm.emit(enc.halt())

        # Classic v1 is a pure data channel: the secret reaches a load
        # *address* (TA003) but never a branch, so no fetch structure
        # (DSB/iTLB) or store site is secret-dependent -- the contrast
        # case for the µop-cache variant above.
        self._lint_secrets = [
            SecretClaim(
                name="secret", entry="victim", label="secret",
                size=len(self.secret) or 1, leaks_to=(),
            )
        ]

        return asm.assemble(entry="invoke_victim")

    def _install_secret(self) -> None:
        base = self.core.addr_of("secret")
        for i, byte in enumerate(self.secret):
            self.core.write_mem(base + i, byte, size=1)

    def leak_byte(self, byte_index: int) -> int:
        """Recover one secret byte via FLUSH+RELOAD."""
        self._install_secret()
        oob = ARRAY_BYTES + byte_index
        best = 0
        for _ in range(self.rounds_per_byte):
            self._call("invoke_victim", regs={"r1": 16})  # train
            self._call("invoke_victim", regs={"r1": 16})
            self._call("flush_all")
            self._call("invoke_victim", regs={"r1": oob})
            self._call("reload_all")
            base = self.core.addr_of("reload_results")
            times = [
                self._elapsed(base + 8 * k) or (1 << 62)
                for k in range(256)
            ]
            best = min(range(256), key=lambda k: times[k])
        return best

    def leak(self, nbytes: Optional[int] = None) -> AttackStats:
        """Leak the secret byte by byte; returns Table-II stats."""
        nbytes = nbytes if nbytes is not None else len(self.secret)
        self.total_cycles = 0
        before = self.core.counters().snapshot()
        leaked = bytes(self.leak_byte(k) for k in range(nbytes))
        counters = self.core.counters().delta(before)
        return AttackStats(
            leaked=leaked,
            secret=self.secret[:nbytes],
            total_cycles=self.total_cycles,
            freq_ghz=self.config.freq_ghz,
            counters=counters,
        )


@dataclass
class FenceSignal:
    """Figure 10 measurement for one synchronisation primitive."""

    fence: str  # "none" | "lfence" | "cpuid"
    timing: ProbeTiming

    @property
    def signal(self) -> float:
        """Mean probe-time separation between secret=1 and secret=0."""
        return self.timing.delta


class LfenceBypass(AttackSession):
    """Variant-2: leaking through a fence via a predicted indirect call.

    The victim authorises the caller, then makes a secret-dependent
    indirect call.  Legitimate (authorised) executions train the
    indirect predictor with the secret-correlated target; a later
    *unauthorised* call runs transiently up to the fence -- but the
    front end still fetches the predicted call target, leaving its
    footprint in the micro-op cache before any dispatch happens.
    """

    def __init__(
        self,
        nsets: int = 8,
        probe_ways: int = 8,
        target_ways: int = 4,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.nsets = nsets
        self.probe_ways = probe_ways
        self.target_ways = target_ways
        super().__init__(config or CPUConfig.skylake(), noise)

    def setup(self) -> None:
        # Function-pointer table: resolved after assembly (and after
        # every reset, which re-images data memory).
        table = self.core.addr_of("fun_table")
        self.core.write_mem(table, self.core.addr_of("target_zero"))
        self.core.write_mem(table + 8, self.core.addr_of("target_one"))

    def build_program(self):
        tiger_sets = striped_sets(self.nsets)
        stride = 32 // self.nsets
        zebra_sets = striped_sets(self.nsets, offset=max(1, stride // 2))
        asm = Assembler()
        asm.reserve("probe_result", 8)
        asm.reserve("auth_table", 16)  # id 0 authorised, id 1 not
        asm.reserve("secret2", 8)
        asm.reserve("fun_table", 16)

        probe_spec = FootprintSpec(tiger_sets, self.probe_ways, RECV_ARENA)
        one_spec = FootprintSpec(tiger_sets, self.target_ways, TTIGER_ARENA)
        zero_spec = FootprintSpec(zebra_sets, self.target_ways, TZEBRA_ARENA)
        emit_probe(asm, "probe", probe_spec, "probe_result")
        emit_chain(asm, "target_one", one_spec, exit_kind="ret")
        emit_chain(asm, "target_zero", zero_spec, exit_kind="ret")
        self._lint_claims = [
            ChainClaim("probe", probe_spec, "probe"),
            ChainClaim("target_one", one_spec, "tiger"),
            ChainClaim("target_zero", zero_spec, "zebra"),
        ]
        self._lint_pairs = [
            PairClaim("target_one", "probe", "conflict"),
            PairClaim("target_zero", "probe", "disjoint"),
        ]

        for fence in ("nf", "lf", "cp"):
            asm.align(64)
            asm.label(f"victim_{fence}")
            asm.emit(enc.mov_imm("r10", asm.resolve("auth_table"), width=64))
            asm.emit(enc.load("r3", "r10", index="r1", scale=8))
            asm.emit(enc.cmp_imm("r3", 1))
            asm.emit(enc.jcc("nz", f"v2_fail_{fence}"))
            if fence == "lf":
                asm.emit(enc.lfence())
            elif fence == "cp":
                asm.emit(enc.cpuid())
            asm.emit(enc.mov_imm("r9", asm.resolve("secret2"), width=64))
            asm.emit(enc.load("r4", "r9"))
            asm.emit(enc.alu_imm("shl", "r4", 3))
            asm.emit(enc.mov_imm("r8", asm.resolve("fun_table"), width=64))
            asm.emit(enc.load("r5", "r8", index="r4"))
            asm.emit(enc.call_ind("r5"))
            asm.label(f"v2_fail_{fence}")
            asm.emit(enc.ret())

            asm.align(64)
            asm.label(f"invoke_{fence}")
            asm.emit(enc.call(f"victim_{fence}"))
            asm.emit(enc.halt())

        asm.align(64)
        asm.label("flush_auth")
        asm.emit(enc.mov_imm("r13", asm.resolve("auth_table") + 8, width=64))
        asm.emit(enc.clflush("r13"))
        asm.emit(enc.halt())

        # secret2 steers an indirect call through fun_table; the table
        # is written post-assembly (setup()), so the claim names the
        # possible landing sites explicitly.
        self._lint_secrets = [
            SecretClaim(
                name="secret2", entry=f"victim_{fence}", label="secret2",
                indirect_targets=("target_zero", "target_one"),
                leaks_to=("dsb", "itlb"),
            )
            for fence in ("nf", "lf", "cp")
        ]

        return asm.assemble(entry="probe")

    # ------------------------------------------------------------------

    def _set_secret(self, bit: int) -> None:
        self.core.write_mem(self.core.addr_of("secret2"), bit)
        auth = self.core.addr_of("auth_table")
        self.core.write_mem(auth, 1)  # id 0 authorised
        self.core.write_mem(auth + 8, 0)  # id 1 not

    def attack_once(self, fence: str, secret_bit: int,
                    train_rounds: int = 3) -> int:
        """One full episode; returns the attacker's probe time."""
        self._set_secret(secret_bit)
        for _ in range(train_rounds):
            self._call(f"invoke_{fence}", regs={"r1": 0})  # legit caller
        self._call("probe")  # prime
        self._call("probe")
        self._call("flush_auth")
        self._call(f"invoke_{fence}", regs={"r1": 1})  # unauthorised
        return self._probe_time()

    def measure(self, fence: str, rounds: int = 8) -> FenceSignal:
        """Collect the probe-time distributions for secret 1 vs 0."""
        ones, zeros = [], []
        for _ in range(rounds):
            zeros.append(self.attack_once(fence, 0))
            ones.append(self.attack_once(fence, 1))
        return FenceSignal(fence, ProbeTiming(zeros, ones))

    def figure10(self, rounds: int = 8) -> Dict[str, FenceSignal]:
        """The Figure 10 experiment: signal with no fence, LFENCE, and
        CPUID.  Expected: strong, strong, none."""
        return {
            "none": self.measure("nf", rounds),
            "lfence": self.measure("lf", rounds),
            "cpuid": self.measure("cp", rounds),
        }
