"""Shared exception types."""


class ReproError(Exception):
    """Base class for all library errors."""


class SimFault(ReproError):
    """An architecturally impossible situation: wild non-speculative
    fetch, privilege violation on the committed path, runaway program.
    Speculative (transient) versions of these conditions are handled
    silently, as hardware does."""


class ConfigError(ReproError):
    """Invalid CPU or experiment configuration."""
