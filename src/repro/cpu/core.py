"""The simulated core: ties front end, micro-op cache, backend and
threads together, and implements checkpointed speculative execution.

Speculation model (see DESIGN.md): micro-ops execute functionally in
fetch order along the *predicted* path.  When a control micro-op turns
out mispredicted, a checkpoint of architectural state is taken (state
at that instant *is* the at-branch state, since processing is in
order) and a squash is scheduled for the branch's resolution cycle --
the scoreboard-computed completion time.  Fetch keeps running down the
wrong path until the fetch clock reaches that cycle, faithfully
filling the micro-op cache, training predictors and touching data
caches along the way; the squash then restores registers, truncates
the store buffer, and resteers fetch.  Nested wrong-path mispredicts
resolve in time order, which is exactly what the variant-1 attack's
secret-dependent transient branch needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.backend.execute import Backend, ResolveInfo
from repro.cpu.config import CPUConfig
from repro.cpu.counters import PerfCounters
from repro.cpu.engine import KEEP_NOISE, make_engine
from repro.cpu.noise import NoiseModel
from repro.cpu.thread import KERNEL_PRIV, ThreadContext, USER_PRIV
from repro.errors import SimFault
from repro.frontend.pipeline import (
    BLOCK_CPUID,
    BLOCK_FAULT,
    BLOCK_HALT,
    BLOCK_SEQ,
    BLOCK_STALL,
    BLOCK_TAKEN,
    FetchBlock,
    FetchedUop,
    FrontEnd,
)
from repro.isa.instruction import BranchKind, UopKind
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import MainMemory
from repro.memory.tlb import TLB
from repro.observe.events import (
    BRANCH_RESOLVE,
    FETCH_BLOCK,
    SQUASH,
    STORE_COMMIT,
    Event,
    EventBus,
)
from repro.uopcache.cache import UopCache
from repro.uopcache.policies import make_policy


#: Sentinel for ``Core.reset(noise=...)``: "keep the current model".
#: (Shared with the engine layer, which re-resets cores internally.)
_KEEP_NOISE = KEEP_NOISE


@dataclass(slots=True)
class _Checkpoint:
    """Architectural + scoreboard state at a mispredicted branch."""

    seq: int
    regs: Dict[str, int]
    privilege: int
    fetch_priv: int
    kernel_link: List[int]
    rsb: List[int]
    reg_ready: Dict[str, int]
    exec_floor: int
    oldest_inflight_done: int
    dispatch_cycle: int
    dispatch_slots_used: int
    last_source: str


@dataclass(slots=True)
class _PendingSquash:
    """A discovered misprediction awaiting its resolution cycle."""

    seq: int
    resolve_cycle: int
    correct_rip: int
    checkpoint: _Checkpoint


@dataclass(slots=True)
class _SpecState:
    """Per-thread speculation bookkeeping."""

    seq: int = 0
    pending: List[_PendingSquash] = field(default_factory=list)
    head_seqs: List[int] = field(default_factory=list)  # macro heads in flight


class Core:
    """One physical core with up to two SMT hardware threads.

    Typical use::

        core = Core(CPUConfig.skylake(), program)
        delta = core.call("main")        # run until HALT, measure
        print(delta.uops_dsb, delta.uops_legacy)
    """

    MAX_BLOCKS = 20_000_000  # runaway-program guard

    def __init__(
        self,
        config: CPUConfig,
        program: Program,
        noise: Optional[NoiseModel] = None,
        engine: Optional[str] = None,
        fast: bool = True,
    ):
        self.config = config
        self.program = program
        self.noise = noise
        #: ``fast`` hoists the observer/noise lookups out of the
        #: per-block stepping loop, eliding every event-bus site when
        #: no observer is attached.  The one behavioural difference:
        #: an event subscriber that attaches an observer or swaps the
        #: noise model *mid-call* only takes effect at the next call
        #: boundary.  ``fast=False`` restores per-block re-sampling.
        self.fast = fast

        policy = make_policy(config.uop_cache_policy)
        self.uop_cache = UopCache(
            sets=config.uop_cache_sets,
            ways=config.uop_cache_ways,
            uops_per_line=config.uops_per_line,
            max_lines_per_region=config.max_lines_per_region,
            policy=policy,
            sharing=config.uop_cache_sharing,
            privilege_partition=config.privilege_partition_uop_cache,
            region_bytes=config.region_bytes,
        )
        self.hierarchy = MemoryHierarchy(
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            llc_latency=config.llc_latency,
            dram_latency=config.dram_latency,
            on_l1i_evict=self._on_l1i_evict,
            itlb_on_flush=self.uop_cache.flush,
            itlb_entries=config.itlb_entries,
            itlb_walk_latency=config.itlb_walk_latency,
            dtlb=(
                TLB(entries=config.dtlb_entries,
                    walk_latency=config.dtlb_walk_latency)
                if config.dtlb_enabled
                else None
            ),
        )
        self.memory = MainMemory()
        for base, payload in program.data.items():
            self.memory.load_image(base, payload)

        self.frontend = FrontEnd(config, program, self.uop_cache, self.hierarchy)
        self.backend = Backend(
            config,
            self.memory,
            self.hierarchy,
            rdtsc_jitter=noise.rdtsc_jitter if noise else None,
        )
        self.threads = (
            ThreadContext(thread_id=0),
            ThreadContext(thread_id=1),
        )
        self._spec = (_SpecState(), _SpecState())
        #: Observability bus (``None`` until :meth:`observe` attaches
        #: one) -- every hook site guards on this single attribute.
        self.observer: Optional[EventBus] = None
        # Legacy ``trace`` list and its bus subscription (see the
        # ``trace`` property).
        self._trace: Optional[list] = None
        self._trace_sub = None
        #: The stepping backend (see :mod:`repro.cpu.engine`): the
        #: explicit ``engine=`` argument wins, else ``config.engine``.
        self.engine_name = engine if engine is not None else config.engine
        self.engine = make_engine(self.engine_name, self)

    # ------------------------------------------------------------------
    # lifecycle

    def reset(self, noise=_KEEP_NOISE) -> None:
        """Restore the core to its post-construction state.

        Registers, memory image, micro-op cache, cache hierarchy,
        predictors, store buffers, counters and speculation state all
        return to what ``__init__`` left them -- but the assembled
        program and the front end's memoized region decodes are kept,
        so nothing is re-assembled or re-decoded.  A trial on a reset
        core is byte-identical to one on a freshly built core (the
        parity tests assert this), at a fraction of the cost.

        ``noise`` swaps in a different :class:`NoiseModel` (or ``None``
        to disable noise); by default the existing model is kept and
        rewound to its seed, so reset trials replay the same noise
        sequence a fresh core would draw.

        The ``trace`` hook and any :meth:`observe` subscribers are
        debugging aids, not simulation state, and are left alone.

        Delegated to the engine: the replay backend turns a reset after
        a purely-replayed epoch into a cheap *soft* reset (re-image
        memory, re-zero thread state) because the real
        microarchitecture was never touched.
        """
        self.engine.reset(noise)

    def _hard_reset(self, noise=_KEEP_NOISE) -> None:
        """The full post-construction restore (every engine's
        reference semantics; see :meth:`reset`)."""
        if noise is not _KEEP_NOISE:
            self.noise = noise
        if self.noise is not None:
            self.noise.reseed()
        self.backend.rdtsc_jitter = (
            self.noise.rdtsc_jitter if self.noise else None
        )
        self.uop_cache.reset()
        self.hierarchy.reset()
        self.memory.clear()
        for base, payload in self.program.data.items():
            self.memory.load_image(base, payload)
        for buffer in self.backend.store_buffers.values():
            buffer.clear()
        self.backend.reset_store_timing()
        self.frontend.smt_active = False
        self.threads = (
            ThreadContext(thread_id=0),
            ThreadContext(thread_id=1),
        )
        self._spec = (_SpecState(), _SpecState())

    def _reset_spec(self) -> None:
        """Fresh speculation bookkeeping (engine soft-reset helper)."""
        self._spec = (_SpecState(), _SpecState())

    def materialize(self) -> None:
        """Make the real microarchitectural state current.

        Under the replay engine, micro-op cache / hierarchy / predictor
        state goes stale while calls are replayed from memoized
        segments; call this before inspecting those structures directly
        (e.g. :class:`repro.observe.OccupancySnapshot`).  Free on the
        reference engine, and on architectural accessors
        (``read_mem``/``read_reg``/``counters``/``cycles``), which stay
        exact under replay.
        """
        self.engine.materialize()

    def engine_stats(self) -> dict:
        """Backend telemetry (replay hit/record/bailout counts)."""
        stats = {"engine": self.engine_name}
        stats.update(self.engine.stats())
        return stats

    # ------------------------------------------------------------------
    # wiring

    def _on_l1i_evict(self, line_base: int) -> None:
        # Micro-op cache inclusion in the L1I (Section II-B).
        self.uop_cache.invalidate_code_range(
            line_base, line_base + self.hierarchy.l1i.line_size
        )

    # ------------------------------------------------------------------
    # observability

    def observe(self) -> EventBus:
        """The core's structured event bus, created on first use.

        Attaching the bus wires the front end and micro-op cache hook
        sites to it; until then (``self.observer is None``) every hook
        is a single attribute check, so unobserved cores pay nothing.
        See :mod:`repro.observe` for the consumers.

        Observation is an invalidation event for the replay engine:
        replayed segments emit no events, so the engine materializes
        real state and runs this epoch on the reference loop.
        """
        self.engine.observe_attached()
        if self.observer is None:
            bus = EventBus()
            self.observer = bus
            self.frontend.observer = bus
            self.uop_cache.observer = bus
            self.backend.observer = bus
        return self.observer

    def unobserve(self) -> None:
        """Detach the event bus (and any subscribers) entirely.

        Also severs the legacy ``trace`` collector; the collected list
        stays readable but no longer grows.
        """
        self.observer = None
        self.frontend.observer = None
        self.uop_cache.observer = None
        self.backend.observer = None
        self._trace_sub = None

    @property
    def trace(self) -> Optional[list]:
        """Legacy fetch-block trace: a list of ``(cycle, entry, kind,
        source, n_uops)`` tuples, or None when tracing is off.

        Kept for backward compatibility with
        :mod:`repro.cpu.tracing`'s formatters; assigning a list
        subscribes a collector on the structured event bus, so the
        tuples are now a *view* of ``fetch_block`` events.  Prefer
        :class:`repro.observe.TraceRecorder` for new code.
        """
        return self._trace

    @trace.setter
    def trace(self, value: Optional[list]) -> None:
        if self._trace_sub is not None and self.observer is not None:
            self.observer.unsubscribe(self._trace_sub)
            self._trace_sub = None
        self._trace = value
        if value is None:
            return

        def _collect(event: Event, _core=self) -> None:
            data = event.data
            _core._trace.append(
                (
                    event.cycle,
                    data["entry"],
                    data["kind"],
                    data["source"],
                    data["n_uops"],
                )
            )

        self._trace_sub = self.observe().subscribe(_collect, (FETCH_BLOCK,))

    def _commit_hook(self, thread: ThreadContext, obs: Optional[EventBus]):
        """Store-commit callback for the drain sites (None when idle)."""
        if obs is None or not obs.wants(STORE_COMMIT):
            return None

        def _on_commit(entry, _obs=obs, _thread=thread) -> None:
            _obs.emit(
                STORE_COMMIT,
                _thread.fetch_clock,
                _thread.thread_id,
                seq=entry.seq,
                addr=entry.addr,
                size=entry.size,
                value=entry.value,
            )

        return _on_commit

    # ------------------------------------------------------------------
    # public conveniences

    def thread(self, thread_id: int = 0) -> ThreadContext:
        """Hardware-thread context.

        This hands back mutable state the engine's operation ledger
        cannot see (predictor tables, scoreboard fields), so the replay
        engine materializes and stops memoizing for the epoch.  Use
        :meth:`counters` / :meth:`read_reg` / :meth:`cycles` for the
        common reads -- those stay on the fast path.
        """
        self.engine.thread_accessed()
        return self.threads[thread_id]

    def counters(self, thread_id: int = 0) -> PerfCounters:
        """Live counter block of a thread."""
        return self.threads[thread_id].counters

    def write_reg(self, name: str, value: int, thread_id: int = 0) -> None:
        """Set an architectural register (a ledger operation: the
        replay engine journals it as part of the epoch's path)."""
        self.engine.write_reg(name, value, thread_id)

    def read_reg(self, name: str, thread_id: int = 0) -> int:
        """Read an architectural register."""
        return self.threads[thread_id].regs[name]

    def read_mem(self, addr: int, size: int = 8) -> int:
        """Read committed memory (store buffers drain at halt)."""
        return self.memory.read(addr, size)

    def write_mem(self, addr: int, value: int, size: int = 8) -> None:
        """Write memory directly (harness-side setup; journaled)."""
        self.engine.write_mem(addr, value, size)

    def addr_of(self, label: str) -> int:
        """Address of a program label."""
        return self.program.addr_of(label)

    def flush_uop_cache(self) -> None:
        """Architecturally flush the micro-op cache (iTLB-flush path;
        journaled -- under replay a flush in a virtual epoch is applied
        at its journal position on materialize)."""
        self.engine.flush_uop_cache()

    def cycles(self, thread_id: int = 0) -> int:
        """Current cycle count of a thread (fetch/retire max)."""
        t = self.threads[thread_id]
        return max(t.fetch_clock, t.last_retire)

    # ------------------------------------------------------------------
    # running

    def call(
        self,
        entry: Union[str, int],
        thread_id: int = 0,
        regs: Optional[Dict[str, int]] = None,
        reset_clocks: bool = True,
        max_blocks: Optional[int] = None,
    ) -> PerfCounters:
        """Run one thread from ``entry`` until HALT retires.

        Microarchitectural state (caches, predictors, micro-op cache)
        persists across calls -- phases of an attack are separate
        calls.  Returns the counter delta for this call.

        Delegated to the engine: the reference backend interprets the
        blocks; the replay backend returns memoized effects when this
        exact call has been seen on this exact operation path before.
        """
        if isinstance(entry, str):
            entry = self.program.addr_of(entry)
        return self.engine.call(entry, thread_id, regs, reset_clocks,
                                max_blocks)

    def run_smt(
        self,
        entries: Tuple[Union[str, int], Union[str, int]],
        regs: Tuple[Optional[Dict[str, int]], Optional[Dict[str, int]]] = (None, None),
        reset_clocks: bool = True,
        max_blocks: Optional[int] = None,
    ) -> Tuple[PerfCounters, PerfCounters]:
        """Run both hardware threads concurrently until both halt.

        Fetch interleaves at block granularity, always advancing the
        thread whose fetch clock is behind -- a fair round-robin
        approximation of SMT front-end arbitration.  The micro-op
        cache switches into SMT mode (repartitioning under the static
        policy) for the duration.

        SMT interleaving is an invalidation event for the replay
        engine: it bails to the reference loop for the epoch.
        """
        resolved = tuple(
            self.program.addr_of(entry) if isinstance(entry, str) else entry
            for entry in entries
        )
        return self.engine.run_smt(resolved, regs, reset_clocks, max_blocks)

    # ------------------------------------------------------------------
    # the pipeline step

    def _step(
        self,
        thread: ThreadContext,
        obs: Optional[EventBus],
        noise: Optional[NoiseModel],
    ) -> None:
        """Fetch, execute and resolve one block for ``thread``.

        ``obs``/``noise`` are passed in by the engine loop -- hoisted
        once per call in ``fast`` mode, re-sampled per block otherwise
        -- so the hot path pays no attribute lookups for them.
        """
        spec = self._spec[thread.thread_id]
        self._sweep(thread, spec, obs)
        if thread.halted:
            return

        if obs is not None:
            # Attribution hints for clockless components (uop cache).
            self.uop_cache.obs_cycle = thread.fetch_clock
            self.uop_cache.obs_thread = thread.thread_id

        if noise is not None:
            noise.maybe_evict(self.uop_cache)

        block = self.frontend.fetch_block(thread)
        if obs is not None and obs.wants(FETCH_BLOCK):
            # Early fault blocks never charge the fetch clock; every
            # other block costs at least one cycle.
            charged = (
                0
                if block.kind == BLOCK_FAULT and not block.dynuops
                else max(block.cycles, 1)
            )
            obs.emit(
                FETCH_BLOCK,
                thread.fetch_clock,
                thread.thread_id,
                entry=block.entry,
                kind=block.kind,
                source=block.source,
                n_uops=len(block.dynuops),
                cycles=charged,
            )

        halt_seq: Optional[int] = None
        stall_resolve: Optional[ResolveInfo] = None
        cpuid_done = 0
        for du in block.dynuops:
            spec.seq += 1
            du.seq = spec.seq
            if du.uop is du.macro.uops[0]:
                spec.head_seqs.append(du.seq)
                thread.counters.retired_instructions += 1
            kill_time = min(
                (p.resolve_cycle for p in spec.pending), default=None
            )
            # Invisible speculation (Section VII defenses): anything
            # past a discovered misprediction is transient; its
            # data-cache effects are buffered invisibly and dropped at
            # the squash -- equivalent to suppressing them now.  Fetch
            # (and thus the micro-op cache) is untouched: that is the
            # hole the paper's attack drives through.
            suppress_data = (
                self.config.invisible_speculation and kill_time is not None
            )
            resolve = self.backend.process(
                du, thread, kill_time, suppress_data=suppress_data
            )
            if du.uop.kind is UopKind.HALT:
                halt_seq = du.seq
            elif du.uop.kind is UopKind.CPUID:
                cpuid_done = du.exec_done
            if resolve is not None:
                self._handle_resolution(thread, spec, du, resolve, obs)
                if du.pred is not None and du.pred.target is None and not du.squashed:
                    stall_resolve = resolve

        # Block epilogue: where does fetch go next, and when?
        if block.kind in (BLOCK_SEQ, BLOCK_TAKEN):
            if block.next_rip is None:  # unreachable guard
                raise SimFault(f"no next rip after block at 0x{block.entry:x}")
            thread.fetch_rip = block.next_rip
        elif block.kind == BLOCK_STALL:
            if stall_resolve is None or stall_resolve.actual_target is None:
                if spec.pending:
                    # The stalled indirect is itself transient: wait for
                    # the older squash to resteer fetch.
                    self._wait_for_resolution(thread, spec, obs)
                    return
                raise SimFault(
                    f"indirect branch at 0x{block.entry:x} never resolved"
                )
            thread.fetch_rip = stall_resolve.actual_target
            thread.fetch_clock = max(
                thread.fetch_clock,
                stall_resolve.resolve_cycle + self.config.redirect_penalty,
            )
        elif block.kind == BLOCK_CPUID:
            # Fetch of younger instructions stalls until the serialising
            # instruction completes -- unless a squash preempts it.
            stall_until = cpuid_done
            if spec.pending:
                stall_until = min(
                    stall_until, min(p.resolve_cycle for p in spec.pending)
                )
            thread.fetch_clock = max(thread.fetch_clock, stall_until)
            thread.fetch_rip = block.next_rip  # type: ignore[assignment]
            self._sweep(thread, spec, obs)
        elif block.kind == BLOCK_HALT:
            if spec.pending:
                self._wait_for_resolution(thread, spec, obs)
            else:
                thread.halted = True
                self.backend.store_buffer(thread.thread_id).drain_all(
                    self.memory,
                    self._commit_hook(thread, obs) if obs is not None else None,
                )
                spec.head_seqs.clear()
                return
        elif block.kind == BLOCK_FAULT:
            if spec.pending:
                # Transient wild fetch / privilege violation: hardware
                # just stalls fetch until the squash redirects it.
                self._wait_for_resolution(thread, spec, obs)
            else:
                raise SimFault(
                    f"wild fetch at 0x{thread.fetch_rip:x} "
                    f"(priv={thread.fetch_priv})"
                )
        else:  # pragma: no cover
            raise SimFault(f"unknown block kind {block.kind}")

        # A HALT only takes effect if it survived any squash above
        # (wrong-path HALTs are rolled back with everything else).
        halt_committed = (
            halt_seq is not None and halt_seq <= spec.seq and not spec.pending
        )
        if halt_committed and not thread.halted:
            thread.halted = True
            self.backend.store_buffer(thread.thread_id).drain_all(
                self.memory,
                self._commit_hook(thread, obs) if obs is not None else None,
            )
            spec.head_seqs.clear()
            return

        # IDQ backpressure: fetch may run ahead of dispatch only by the
        # IDQ's drain time; past that the front end stalls.
        ahead_limit = self.config.idq_size // self.config.dispatch_width
        if thread.dispatch_cycle - thread.fetch_clock > ahead_limit:
            thread.fetch_clock = thread.dispatch_cycle - ahead_limit

        # Commit stores that can no longer be squashed.
        safe = min((p.seq for p in spec.pending), default=spec.seq)
        self.backend.store_buffer(thread.thread_id).drain_upto(
            safe,
            self.memory,
            self._commit_hook(thread, obs) if obs is not None else None,
        )
        if not spec.pending:
            spec.head_seqs.clear()

        # ROB capacity bounds the transient window.
        if spec.pending:
            oldest = min(spec.pending, key=lambda p: p.seq)
            if spec.seq - oldest.seq > self.config.rob_size:
                self._wait_for_resolution(thread, spec, obs)

    # ------------------------------------------------------------------
    # speculation machinery

    def _handle_resolution(
        self,
        thread: ThreadContext,
        spec: _SpecState,
        du: FetchedUop,
        resolve: ResolveInfo,
        obs: Optional[EventBus],
    ) -> None:
        pred = du.pred
        if pred is None:
            return
        if du.squashed:
            # This branch would never have executed before an older
            # squash: no training, no resteer of its own.
            return
        actual = resolve.actual_target
        mispredicted = pred.target is not None and pred.target != actual
        if obs is not None and obs.wants(BRANCH_RESOLVE):
            obs.emit(
                BRANCH_RESOLVE,
                resolve.resolve_cycle,
                thread.thread_id,
                rip=du.macro.addr,
                predicted=pred.target,
                taken=resolve.taken,
                actual=actual,
                mispredicted=mispredicted,
            )
        thread.predictor.resolve(
            du.macro, resolve.taken, actual if actual is not None else 0, mispredicted
        )
        if mispredicted:
            thread.counters.branch_mispredicts += 1
            checkpoint = self._capture(thread, du.seq)
            spec.pending.append(
                _PendingSquash(du.seq, resolve.resolve_cycle, actual, checkpoint)
            )

    def _capture(self, thread: ThreadContext, seq: int) -> _Checkpoint:
        return _Checkpoint(
            seq=seq,
            regs=dict(thread.regs),
            privilege=thread.privilege,
            fetch_priv=thread.fetch_priv,
            kernel_link=list(thread.kernel_link),
            rsb=thread.predictor.rsb.snapshot(),
            reg_ready=dict(thread.reg_ready),
            exec_floor=thread.exec_floor,
            oldest_inflight_done=thread.oldest_inflight_done,
            dispatch_cycle=thread.dispatch_cycle,
            dispatch_slots_used=thread.dispatch_slots_used,
            last_source=thread.last_source,
        )

    def _sweep(
        self,
        thread: ThreadContext,
        spec: _SpecState,
        obs: Optional[EventBus],
    ) -> None:
        """Fire every pending squash whose resolution time has come."""
        while spec.pending:
            nxt = min(spec.pending, key=lambda p: p.resolve_cycle)
            if nxt.resolve_cycle > thread.fetch_clock:
                return
            self._squash(thread, spec, nxt, obs)

    def _wait_for_resolution(
        self,
        thread: ThreadContext,
        spec: _SpecState,
        obs: Optional[EventBus],
    ) -> None:
        """Stall fetch until the earliest pending squash can fire."""
        earliest = min(p.resolve_cycle for p in spec.pending)
        thread.fetch_clock = max(thread.fetch_clock, earliest)
        self._sweep(thread, spec, obs)

    def _squash(
        self,
        thread: ThreadContext,
        spec: _SpecState,
        pending: _PendingSquash,
        obs: Optional[EventBus],
    ) -> None:
        cp = pending.checkpoint
        squashed = spec.seq - pending.seq
        if obs is not None and obs.wants(SQUASH):
            obs.emit(
                SQUASH,
                pending.resolve_cycle,
                thread.thread_id,
                seq=pending.seq,
                squashed=squashed,
                correct_rip=pending.correct_rip,
            )
        thread.counters.squashes += 1
        thread.counters.squashed_uops += squashed
        thread.counters.retired_uops -= squashed
        while spec.head_seqs and spec.head_seqs[-1] > pending.seq:
            spec.head_seqs.pop()
            thread.counters.retired_instructions -= 1

        thread.regs = dict(cp.regs)
        thread.privilege = cp.privilege
        thread.fetch_priv = cp.fetch_priv
        thread.kernel_link = list(cp.kernel_link)
        thread.predictor.rsb.restore(cp.rsb)
        thread.reg_ready = dict(cp.reg_ready)
        thread.exec_floor = cp.exec_floor
        thread.oldest_inflight_done = cp.oldest_inflight_done
        thread.dispatch_cycle = cp.dispatch_cycle
        thread.dispatch_slots_used = cp.dispatch_slots_used
        thread.last_source = cp.last_source

        self.backend.store_buffer(thread.thread_id).truncate(pending.seq)
        spec.seq = pending.seq
        spec.pending = [p for p in spec.pending if p.seq < pending.seq]

        thread.fetch_rip = pending.correct_rip
        thread.fetch_clock = pending.resolve_cycle + self.config.mispredict_penalty
        thread.last_retire = max(thread.last_retire, thread.fetch_clock)
