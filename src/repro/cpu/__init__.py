"""The simulated core: configuration, counters, thread contexts, and
the execution loop tying front end, micro-op cache and backend together.
"""

from repro.cpu.config import CPUConfig
from repro.cpu.counters import PerfCounters
from repro.cpu.core import Core
from repro.cpu.thread import ThreadContext

__all__ = ["CPUConfig", "Core", "PerfCounters", "ThreadContext"]
