"""Pluggable simulation engines: how a :class:`~repro.cpu.core.Core`
steps its threads.

The core's public running surface (``call``/``run_smt``/``reset`` plus
the harness-side pokes ``write_reg``/``write_mem``/``flush_uop_cache``)
is an *operation ledger*: with no noise model and no observer attached,
the simulator is a pure function of the operation sequence applied
since the last reset -- same program, same config, same ops, same
state, bit for bit (the reset-parity tests have asserted exactly this
since PR 2).  The engine layer turns that guarantee into speed:

:class:`ReferenceEngine`
    The interpreter: runs the block-step loop exactly as ``Core`` always
    has.  The loop lives here (not on ``Core``) so per-block attribute
    traffic -- the observer and noise lookups, the bound ``_step`` --
    is hoisted out of the hot path when ``core.fast`` is set.

:class:`ReplayEngine`
    Superblock replay: memoizes every completed ``call`` as a node in a
    trie keyed by the operation path from reset -- (program entry,
    thread, register arguments, clock policy) per edge -- and replays
    the recorded *effects* (end-of-call thread state, absolute counter
    block, committed stores, returned counter delta) instead of
    re-simulating micro-ops.  Invalidation rules, per the paper's own
    determinism boundary:

    - **noise** (``core.noise is not None``): RDTSC jitter and random
      evictions make a segment non-deterministic -- the epoch runs on
      the reference interpreter, nothing is recorded or replayed;
    - **SMT** (``run_smt``): treated as non-deterministic interleaving
      -- the engine materializes, bails to the reference loop and marks
      the epoch dead;
    - **observation** (an attached :class:`~repro.observe.EventBus`, or
      direct microarchitectural access via ``Core.thread()``): replayed
      segments emit no events and keep microarchitectural state
      *virtual*, so the epoch is materialized and marked dead.

    Replay keeps *architectural* state (registers, memory, counters,
    clocks) exact at all times; microarchitectural state (micro-op
    cache, hierarchy, predictors) goes stale while virtual and is
    rebuilt on demand by :meth:`ReplayEngine.materialize` -- a real
    reset plus re-execution of the journaled operation path.  A purely
    virtual epoch leaves the real microarchitecture untouched at its
    post-reset image, which makes the next reset *soft*: re-image
    memory and re-zero thread state, skipping the micro-op cache /
    hierarchy / predictor sweeps entirely.  That soft reset plus
    replayed calls is where the ~10x+ trial throughput comes from
    (``benchmarks/test_session_throughput.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cpu.counters import PerfCounters
from repro.cpu.thread import USER_PRIV, fresh_registers
from repro.errors import ConfigError, SimFault

#: Engine names accepted by ``CPUConfig.engine`` / ``Core(engine=)``.
ENGINES = ("reference", "replay")

#: Sentinel for ``reset(noise=...)``: "keep the current model".
KEEP_NOISE = object()

_MASK = (1 << 64) - 1


class Engine:
    """Stepping-backend interface extracted from ``Core``.

    ``Core`` routes every ledger operation through its engine; the
    engine decides whether to interpret, record or replay it.  ``entry``
    addresses arrive pre-resolved (labels are program identity, not
    engine state).
    """

    name = "abstract"

    def __init__(self, core):
        self.core = core

    # -- running -------------------------------------------------------
    def call(self, entry: int, thread_id: int,
             regs: Optional[Dict[str, int]], reset_clocks: bool,
             max_blocks: Optional[int]) -> PerfCounters:
        raise NotImplementedError

    def run_smt(self, entries: Tuple[int, int], regs,
                reset_clocks: bool,
                max_blocks: Optional[int]) -> Tuple[PerfCounters, PerfCounters]:
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------
    def reset(self, noise=KEEP_NOISE) -> None:
        self.core._hard_reset(noise)

    def materialize(self) -> None:
        """Make the real microarchitectural state current (no-op for
        backends that never let it go stale)."""

    # -- ledger operations outside call/run_smt ------------------------
    def write_reg(self, name: str, value: int, thread_id: int) -> None:
        self.core.threads[thread_id].regs[name] = value & _MASK

    def write_mem(self, addr: int, value: int, size: int) -> None:
        self.core.memory.write(addr, value, size)

    def flush_uop_cache(self) -> None:
        self.core.uop_cache.flush()

    # -- invalidation hooks --------------------------------------------
    def observe_attached(self) -> None:
        """An event bus is being attached (observation starts)."""

    def thread_accessed(self) -> None:
        """Caller is reaching past the ledger (``Core.thread()``)."""

    def stats(self) -> Dict[str, int]:
        return {}


class ReferenceEngine(Engine):
    """The interpreter backend: the pre-engine ``Core`` loops, verbatim
    in semantics, with the per-block attribute lookups hoisted when
    ``core.fast`` is set."""

    name = "reference"

    def call(self, entry, thread_id, regs, reset_clocks, max_blocks):
        core = self.core
        thread = core.threads[thread_id]
        if regs:
            for name, value in regs.items():
                thread.regs[name] = value & _MASK
        if reset_clocks:
            thread.reset_pipeline_clocks()
            # The store-drain schedule lives in the same clock domain
            # as the pipeline clocks; rebasing one without the other
            # would leave phantom in-flight commits from the last call.
            core.backend.reset_store_timing()
        thread.fetch_rip = entry
        thread.fetch_priv = thread.privilege
        thread.halted = False
        before = thread.counters.snapshot()
        limit = max_blocks if max_blocks is not None else core.MAX_BLOCKS
        blocks = 0
        step = core._step
        fast = core.fast
        obs = core.observer
        noise = core.noise
        while not thread.halted:
            blocks += 1
            if blocks > limit:
                raise SimFault(
                    f"thread {thread_id} exceeded {limit} fetch blocks "
                    f"(runaway program?) at rip=0x{thread.fetch_rip:x}"
                )
            if not fast:
                obs = core.observer
                noise = core.noise
            step(thread, obs, noise)
        return thread.counters.delta(before)

    def run_smt(self, entries, regs, reset_clocks, max_blocks):
        core = self.core
        core.uop_cache.set_smt_active(True)
        core.frontend.smt_active = True
        if reset_clocks:
            core.backend.reset_store_timing()
        t0, t1 = core.threads
        befores = []
        for tid, thread in ((0, t0), (1, t1)):
            if regs[tid]:
                for name, value in regs[tid].items():
                    thread.regs[name] = value & _MASK
            if reset_clocks:
                thread.reset_pipeline_clocks()
            thread.fetch_rip = entries[tid]
            thread.fetch_priv = thread.privilege
            thread.halted = False
            befores.append(thread.counters.snapshot())
        limit = max_blocks if max_blocks is not None else core.MAX_BLOCKS
        blocks = 0
        step = core._step
        fast = core.fast
        obs = core.observer
        noise = core.noise
        while True:
            h0 = t0.halted
            h1 = t1.halted
            if h0 and h1:
                break
            blocks += 1
            if blocks > limit:
                raise SimFault(f"SMT run exceeded {limit} fetch blocks")
            # Advance the thread whose fetch clock is behind (ties go
            # to thread 0, matching min() over (t0, t1)).
            if h0:
                thread = t1
            elif h1 or t0.fetch_clock <= t1.fetch_clock:
                thread = t0
            else:
                thread = t1
            if not fast:
                obs = core.observer
                noise = core.noise
            step(thread, obs, noise)
        core.frontend.smt_active = False
        core.uop_cache.set_smt_active(False)
        return (
            t0.counters.delta(befores[0]),
            t1.counters.delta(befores[1]),
        )


class _Node:
    """One trie node: the state reached by an operation path."""

    __slots__ = ("children", "effects")

    def __init__(self):
        self.children: Dict[tuple, "_Node"] = {}
        #: For ``call`` edges: ``(thread_state, counters_abs, stores,
        #: delta)``; ``None`` for cheap ledger edges (reg/mem writes,
        #: flushes), whose effect is the operation itself.
        self.effects = None


class ReplayEngine(Engine):
    """Superblock replay backend (see the module docstring)."""

    name = "replay"

    #: Ceiling on memoized trie nodes per core; past it the current
    #: epoch falls back to the reference loop (recording stops, replay
    #: of already-memoized prefixes keeps working on later epochs).
    MAX_NODES = 250_000

    def __init__(self, core):
        super().__init__(core)
        self._ref = ReferenceEngine(core)
        self._root = _Node()
        self._node = self._root
        self._journal: list = []
        #: Real microarchitectural state is stale (some calls since the
        #: epoch's reset were replayed, not simulated).
        self._virtual = False
        #: Recording/replay disabled until the next reset.
        self._dead = False
        #: No real call/flush has touched the microarchitecture since
        #: the last reset -- the next reset can be soft.
        self._uarch_clean = True
        self._nodes = 1
        # Telemetry (surfaced via Core.engine_stats()).
        self.replayed = 0
        self.recorded = 0
        self.bailouts = 0
        self.soft_resets = 0
        self.materializations = 0

    # ------------------------------------------------------------------
    # epoch state

    def _usable(self) -> bool:
        core = self.core
        return (not self._dead and core.noise is None
                and core.observer is None)

    def materialize(self) -> None:
        """Rebuild real state from the journal: hard-reset the core,
        then re-execute every ledger operation of this epoch through
        the reference interpreter."""
        if not self._virtual:
            return
        core = self.core
        self._virtual = False  # before re-execution: ops below are real
        self.materializations += 1
        core._hard_reset(KEEP_NOISE)
        ref = self._ref
        for op in self._journal:
            kind = op[0]
            if kind == "c":
                ref.call(op[1], op[2], dict(op[3]) if op[3] else None,
                         op[4], op[5])
            elif kind == "r":
                core.threads[op[3]].regs[op[1]] = op[2]
            elif kind == "m":
                core.memory.write(op[1], op[2], op[3])
            else:  # "f"
                core.uop_cache.flush()
        self._uarch_clean = False

    def reset(self, noise=KEEP_NOISE) -> None:
        core = self.core
        if (self._uarch_clean and core.observer is None
                and noise is KEEP_NOISE and core.noise is None):
            self._soft_reset()
            self.soft_resets += 1
        else:
            core._hard_reset(noise)
            self._uarch_clean = True
        self._node = self._root
        self._journal = []
        self._virtual = False
        self._dead = False

    def _soft_reset(self) -> None:
        """Reset after an epoch that never touched the real
        microarchitecture: the micro-op cache, hierarchy and predictors
        still hold their post-reset image, so only architectural state
        needs re-zeroing."""
        core = self.core
        memory = core.memory
        memory.clear()
        for base, payload in core.program.data.items():
            memory.load_image(base, payload)
        for buffer in core.backend.store_buffers.values():
            buffer.clear()
        core.backend.reset_store_timing()
        core.frontend.smt_active = False
        for thread in core.threads:
            thread.regs = fresh_registers(thread.thread_id)
            thread.privilege = USER_PRIV
            thread.halted = True
            thread.fetch_rip = 0
            thread.fetch_priv = USER_PRIV
            thread.kernel_link = []
            thread.counters.reset()
            thread.reset_pipeline_clocks()
        core._reset_spec()

    # ------------------------------------------------------------------
    # running

    def call(self, entry, thread_id, regs, reset_clocks, max_blocks):
        if not self._usable():
            self._dead = True
            self.materialize()
            self._uarch_clean = False
            return self._ref.call(entry, thread_id, regs, reset_clocks,
                                  max_blocks)
        key = ("c", entry, thread_id,
               tuple(sorted(regs.items())) if regs else None,
               reset_clocks, max_blocks)
        node = self._node.children.get(key)
        if node is not None:
            self._journal.append(key)
            self._node = node
            self._virtual = True
            self.replayed += 1
            return self._apply_call(node, thread_id)
        self.materialize()
        if self._nodes >= self.MAX_NODES:
            self._dead = True
            self.bailouts += 1
            self._uarch_clean = False
            return self._ref.call(entry, thread_id, regs, reset_clocks,
                                  max_blocks)
        return self._record_call(key, entry, thread_id, regs,
                                 reset_clocks, max_blocks)

    def run_smt(self, entries, regs, reset_clocks, max_blocks):
        # SMT interleaving invalidates the segment: materialize, run
        # the reference loop, and keep the epoch on it.
        self.materialize()
        self._dead = True
        self.bailouts += 1
        self._uarch_clean = False
        return self._ref.run_smt(entries, regs, reset_clocks, max_blocks)

    # ------------------------------------------------------------------
    # record / replay

    def _record_call(self, key, entry, thread_id, regs, reset_clocks,
                     max_blocks):
        core = self.core
        memory = core.memory
        stores: list = []
        real_write = memory.write

        def recording_write(addr, value, size=8,
                            _log=stores.append, _write=real_write):
            _log((addr, value, size))
            _write(addr, value, size)

        memory.write = recording_write  # shadows the bound method
        self._uarch_clean = False
        try:
            delta = self._ref.call(entry, thread_id, regs, reset_clocks,
                                   max_blocks)
        except BaseException:
            # A faulting call leaves mid-run state; reproducing that by
            # replay is not worth modelling -- keep the epoch real.
            self._dead = True
            raise
        finally:
            del memory.__dict__["write"]
        thread = core.threads[thread_id]
        node = _Node()
        node.effects = (
            (
                dict(thread.regs),
                thread.privilege,
                thread.halted,
                thread.fetch_rip,
                thread.fetch_priv,
                thread.fetch_clock,
                thread.last_source,
                list(thread.kernel_link),
                dict(thread.reg_ready),
                thread.exec_floor,
                thread.oldest_inflight_done,
                thread.dispatch_cycle,
                thread.dispatch_slots_used,
                thread.last_retire,
                thread.last_rdtsc,
            ),
            dict(thread.counters.__dict__),
            tuple(stores),
            dict(delta.__dict__),
        )
        self._node.children[key] = node
        self._node = node
        self._nodes += 1
        self._journal.append(key)
        self.recorded += 1
        return delta

    def _apply_call(self, node, thread_id):
        core = self.core
        thread = core.threads[thread_id]
        state, counters_abs, stores, delta = node.effects
        (regs, privilege, halted, fetch_rip, fetch_priv, fetch_clock,
         last_source, kernel_link, reg_ready, exec_floor,
         oldest_inflight_done, dispatch_cycle, dispatch_slots_used,
         last_retire, last_rdtsc) = state
        thread.regs = dict(regs)
        thread.privilege = privilege
        thread.halted = halted
        thread.fetch_rip = fetch_rip
        thread.fetch_priv = fetch_priv
        thread.fetch_clock = fetch_clock
        thread.last_source = last_source
        thread.kernel_link = list(kernel_link)
        thread.reg_ready = dict(reg_ready)
        thread.exec_floor = exec_floor
        thread.oldest_inflight_done = oldest_inflight_done
        thread.dispatch_cycle = dispatch_cycle
        thread.dispatch_slots_used = dispatch_slots_used
        thread.last_retire = last_retire
        thread.last_rdtsc = last_rdtsc
        thread.counters.__dict__.update(counters_abs)
        write = core.memory.write
        for addr, value, size in stores:
            write(addr, value, size)
        return PerfCounters(**delta)

    # ------------------------------------------------------------------
    # cheap ledger operations

    def _advance(self, key) -> bool:
        """Record/advance a cheap ledger edge; False -> epoch died."""
        if not self._usable():
            self._dead = True
            self.materialize()
            return False
        children = self._node.children
        node = children.get(key)
        if node is None:
            if self._nodes >= self.MAX_NODES:
                self._dead = True
                self.materialize()
                return False
            node = _Node()
            children[key] = node
            self._nodes += 1
        self._node = node
        self._journal.append(key)
        return True

    def write_reg(self, name, value, thread_id):
        masked = value & _MASK
        self._advance(("r", name, masked, thread_id))
        self.core.threads[thread_id].regs[name] = masked

    def write_mem(self, addr, value, size):
        self._advance(("m", addr, value, size))
        self.core.memory.write(addr, value, size)

    def flush_uop_cache(self):
        if self._advance(("f",)) and self._virtual:
            # Virtual: the real cache holds the (stale) post-reset
            # image; the flush is deferred to the journal, where
            # materialize() applies it at the right point in the path.
            return
        self._uarch_clean = False
        self.core.uop_cache.flush()

    # ------------------------------------------------------------------
    # invalidation hooks

    def observe_attached(self):
        self.materialize()
        self._dead = True
        self._uarch_clean = False

    def thread_accessed(self):
        # Reaching past the ledger (predictor pokes, cache inspection)
        # can mutate state the trie keys cannot see: materialize and
        # keep the epoch on the reference loop.
        self.materialize()
        self._dead = True
        self._uarch_clean = False

    def stats(self):
        return {
            "nodes": self._nodes,
            "replayed": self.replayed,
            "recorded": self.recorded,
            "bailouts": self.bailouts,
            "soft_resets": self.soft_resets,
            "materializations": self.materializations,
            "dead": self._dead,
            "virtual": self._virtual,
        }


def make_engine(name: str, core) -> Engine:
    """Engine factory for ``Core``; raises on unknown names."""
    if name == "reference":
        return ReferenceEngine(core)
    if name == "replay":
        return ReplayEngine(core)
    raise ConfigError(f"unknown engine {name!r}; expected one of {ENGINES}")
