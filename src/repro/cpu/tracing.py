"""Pipeline trace formatting.

``Core.trace`` (when set to a list) records one tuple per fetch block:
``(fetch_clock, entry, kind, source, n_uops)``.  This module renders
those records with program labels resolved -- the view used throughout
this project to debug transient windows (see the development notes in
DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.isa.program import Program

TraceRecord = Tuple[int, int, str, str, int]


def format_trace(
    records: Iterable[TraceRecord],
    program: Optional[Program] = None,
    limit: Optional[int] = None,
) -> str:
    """Render trace records as an aligned text listing.

    With a program, entry addresses are annotated with the nearest
    preceding label (the function the block belongs to).
    """
    labels: List[Tuple[int, str]] = []
    if program is not None:
        labels = sorted((addr, name) for name, addr in program.labels.items())

    def nearest_label(addr: int) -> str:
        best = ""
        for label_addr, name in labels:
            if label_addr > addr:
                break
            best = name if label_addr == addr else f"{name}+{addr - label_addr:#x}"
        return best

    lines = []
    for i, (clock, entry, kind, source, n_uops) in enumerate(records):
        if limit is not None and i >= limit:
            lines.append(f"  ... ({i} records shown)")
            break
        where = nearest_label(entry) if labels else ""
        lines.append(
            f"  clk={clock:6d}  {entry:#010x} {where:<24s} "
            f"{kind:<14s} {source:<5s} {n_uops:2d} uops"
        )
    return "\n".join(lines)


def summarize_trace(records: Iterable[TraceRecord]) -> dict:
    """Aggregate statistics over a trace: blocks, uops and per-source
    delivery counts."""
    total_blocks = 0
    total_uops = 0
    by_source: dict = {}
    by_kind: dict = {}
    for _, _, kind, source, n_uops in records:
        total_blocks += 1
        total_uops += n_uops
        by_source[source] = by_source.get(source, 0) + n_uops
        by_kind[kind] = by_kind.get(kind, 0) + 1
    return {
        "blocks": total_blocks,
        "uops": total_uops,
        "uops_by_source": by_source,
        "blocks_by_kind": by_kind,
    }
