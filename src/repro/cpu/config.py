"""CPU configuration presets.

Structural parameters follow the paper's Section II description of
Skylake/Coffee Lake and AMD Zen; latency parameters are chosen for
plausible *ordering* rather than cycle-exact fidelity (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


@dataclass
class CPUConfig:
    """Every knob of the simulated core.

    Use the :meth:`skylake` / :meth:`zen` / :meth:`sunny_cove`
    constructors; ``replace()`` (dataclasses) or :meth:`with_options`
    derive variants for mitigation and ablation studies.
    """

    name: str = "skylake"

    # ---- front end -------------------------------------------------
    fetch_bytes_per_cycle: int = 16
    macro_op_queue: int = 50
    decode_style: str = "skylake"  # "skylake" (4x1:1 + 1x1:4) or "zen" (4x1:2)
    max_decode_uops_per_cycle: int = 5
    msrom_threshold: int = 4  # uop count above which decode goes to MSROM
    msrom_uops_per_cycle: int = 4
    msrom_min_cycles: int = 2
    lcp_penalty: int = 3  # cycles per length-changing prefix
    macro_fusion: bool = True  # cmp/test+jcc share one decode slot
    dsb_mite_switch_penalty: int = 1  # one-cycle DSB<->MITE switch (paper, II-B)

    # ---- micro-op cache ---------------------------------------------
    uop_cache_enabled: bool = True
    uop_cache_sets: int = 32
    uop_cache_ways: int = 8
    uops_per_line: int = 6
    max_lines_per_region: int = 3
    uop_cache_sharing: str = "static"  # "static" (Intel) / "competitive" (AMD)
    uop_cache_policy: str = "hotness"  # "hotness" / "lru" (ablation)
    dsb_uops_per_cycle: int = 6
    region_bytes: int = 32

    # ---- backend -----------------------------------------------------
    idq_size: int = 64  # IDQ entries; bounds how far fetch runs ahead
    dispatch_width: int = 4
    rob_size: int = 224
    mispredict_penalty: int = 16
    redirect_penalty: int = 8  # resteer after an unpredicted indirect/ret

    # ---- memory ------------------------------------------------------
    l1_latency: int = 4
    l2_latency: int = 14
    llc_latency: int = 44
    dram_latency: int = 200

    # ---- TLBs --------------------------------------------------------
    itlb_entries: int = 128
    itlb_walk_latency: int = 30
    # The data-side TLB is modelled only when enabled: the paper's
    # attacks never exercise it, and keeping the default data path
    # identical preserves every existing calibration.  The contention
    # suite (repro.contention) switches it on per-resource.
    dtlb_enabled: bool = False
    dtlb_entries: int = 64
    dtlb_walk_latency: int = 30

    # ---- store buffer ------------------------------------------------
    # Timing-only drain model (repro.backend.execute): stores retire
    # into a bounded per-thread buffer whose entries commit through an
    # L1D write port at one commit per ``store_drain_interval`` cycles.
    # Under "competitive" sharing both SMT threads contend for one
    # port (the cross-thread signal the contention suite measures);
    # "partitioned" gives each thread a private port.
    store_buffer_entries: int = 56
    store_drain_interval: int = 2
    store_buffer_sharing: str = "competitive"  # "competitive" / "partitioned"

    # ---- SMT ---------------------------------------------------------
    smt_decode_shared: bool = True  # both vendors share the legacy decoders

    # ---- mitigations (Sections VII/VIII) --------------------------------
    flush_uop_cache_on_domain_crossing: bool = False
    privilege_partition_uop_cache: bool = False
    # Invisible speculation (InvisiSpec/SafeSpec-class, Section VII):
    # loads on a known-transient path leave no data-cache footprint.
    # The paper's point -- reproduced by tests -- is that this blocks
    # data-cache disclosure but not the micro-op cache, which is filled
    # by *fetch*, upstream of any such defense.
    invisible_speculation: bool = False

    # ---- simulation engine ---------------------------------------------
    # Stepping backend (repro.cpu.engine): "reference" interprets every
    # block; "replay" memoizes deterministic call segments and replays
    # their recorded effects (bit-identical results -- the engine-parity
    # tests assert it -- at ~10x+ trial throughput for reset-loop
    # workloads).  Part of the config so harness job keys and serve
    # specs distinguish backends (cache schema v3).
    engine: str = "reference"

    # ---- reporting -----------------------------------------------------
    freq_ghz: float = 2.7  # i7-8700T nominal; converts cycles -> seconds

    def __post_init__(self) -> None:
        if self.engine not in ("reference", "replay"):
            raise ConfigError(
                f"unknown engine {self.engine!r}; "
                f"expected 'reference' or 'replay'"
            )
        if self.decode_style not in ("skylake", "zen"):
            raise ConfigError(f"unknown decode style {self.decode_style!r}")
        if self.uop_cache_sharing not in ("static", "competitive"):
            raise ConfigError(f"unknown sharing {self.uop_cache_sharing!r}")
        if self.uop_cache_sets & (self.uop_cache_sets - 1):
            raise ConfigError("uop_cache_sets must be a power of two")
        if self.store_buffer_sharing not in ("competitive", "partitioned"):
            raise ConfigError(
                f"unknown store buffer sharing {self.store_buffer_sharing!r}"
            )

    @property
    def uop_cache_capacity(self) -> int:
        """Total micro-op capacity of the cache."""
        return self.uop_cache_sets * self.uop_cache_ways * self.uops_per_line

    def with_options(self, **kwargs) -> "CPUConfig":
        """Derived config with the given fields replaced."""
        return replace(self, **kwargs)

    # ---- presets --------------------------------------------------------

    @classmethod
    def skylake(cls, **overrides) -> "CPUConfig":
        """Intel Skylake/Coffee Lake-class front end (the paper's
        characterization target): 32x8x6 DSB, statically partitioned
        across SMT threads, 5-uop legacy decode."""
        return cls(name="skylake", **overrides)

    @classmethod
    def zen(cls, **overrides) -> "CPUConfig":
        """AMD Zen-class front end: 4x(1:2) decoders with a 2-uop
        microcode threshold and a *competitively shared* 2K-uop cache
        (8 uops/line) -- the configuration the cross-SMT channel of
        Section V-B requires."""
        params = dict(
            name="zen",
            decode_style="zen",
            msrom_threshold=2,
            max_decode_uops_per_cycle=8,
            uops_per_line=8,
            dsb_uops_per_cycle=8,
            uop_cache_sharing="competitive",
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def zen2(cls, **overrides) -> "CPUConfig":
        """AMD Zen 2-class: the paper notes its micro-op cache holds
        as many as 4K micro-ops; modelled as 64 sets x 8 ways x 8."""
        params = dict(
            name="zen2",
            decode_style="zen",
            msrom_threshold=2,
            max_decode_uops_per_cycle=8,
            uop_cache_sets=64,
            uops_per_line=8,
            dsb_uops_per_cycle=8,
            uop_cache_sharing="competitive",
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def sunny_cove(cls, **overrides) -> "CPUConfig":
        """Sunny Cove-class: the paper notes its micro-op cache is 1.5x
        Skylake's; modelled as 12 ways (32x12x6 = 2304 uops)."""
        params = dict(name="sunny_cove", uop_cache_ways=12)
        params.update(overrides)
        return cls(**params)

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert simulated cycles to wall-clock seconds at freq_ghz."""
        return cycles / (self.freq_ghz * 1e9)
