"""Per-phase wall-clock accounting for the simulator hot path.

``repro profile`` wants to answer "where does a trial's *host* time
go?" in pipeline terms -- fetch, decode, execute, commit -- rather
than in Python-function terms (which cProfile already covers).
:class:`PhaseTimer` patches the four hot entry points for the duration
of a ``with`` block and attributes *exclusive* wall time to phases:

- **fetch**   -- ``FrontEnd.fetch_block`` (DSB lookup, delivery walk,
  timing), minus the nested decode time;
- **decode**  -- ``FrontEnd._walk_region`` (the memoized region
  decode; near-zero once the walk cache is warm);
- **execute** -- ``Backend.process`` (functional execution plus the
  scoreboard), minus the nested commit time;
- **commit**  -- ``Backend._store_timing`` (the bounded store-drain
  model) plus the functional ``StoreBuffer`` drains.

Patching happens at class level, so the timer sees every core in the
process; it is a CLI-profiling aid, not something to leave attached in
library code.  Nesting is handled with an explicit stack so a child's
time is subtracted from its parent's phase exactly once.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.backend.execute import Backend
from repro.backend.storebuffer import StoreBuffer
from repro.frontend.pipeline import FrontEnd

#: (phase, owning class, method name) patch points, in pipeline order.
PHASE_PATCHES: Tuple[Tuple[str, type, str], ...] = (
    ("fetch", FrontEnd, "fetch_block"),
    ("decode", FrontEnd, "_walk_region"),
    ("execute", Backend, "process"),
    ("commit", Backend, "_store_timing"),
    ("commit", StoreBuffer, "drain_upto"),
    ("commit", StoreBuffer, "drain_all"),
)

#: Report ordering (phases appear once even with multiple patch points).
PHASE_ORDER = ("fetch", "decode", "execute", "commit")


class PhaseTimer:
    """Context manager accumulating exclusive per-phase wall time.

    Usage::

        with PhaseTimer() as timer:
            run_workload()
        for phase, seconds, share in timer.report():
            ...
    """

    def __init__(self) -> None:
        self.phases: Dict[str, float] = {p: 0.0 for p in PHASE_ORDER}
        #: Number of calls into each phase's entry points.
        self.calls: Dict[str, int] = {p: 0 for p in PHASE_ORDER}
        self._saved: List[Tuple[type, str, object]] = []
        # Stack of accumulated child time, one slot per live wrapped
        # frame; lets each wrapper subtract nested wrapped calls so a
        # second is attributed to exactly one phase.
        self._child: List[float] = []

    def _wrap(self, phase: str, fn):
        timer = self
        perf = time.perf_counter

        def wrapper(*args, **kwargs):
            timer.calls[phase] += 1
            start = perf()
            timer._child.append(0.0)
            try:
                return fn(*args, **kwargs)
            finally:
                child = timer._child.pop()
                elapsed = perf() - start
                timer.phases[phase] += elapsed - child
                if timer._child:
                    timer._child[-1] += elapsed

        return wrapper

    def __enter__(self) -> "PhaseTimer":
        for phase, cls, name in PHASE_PATCHES:
            original = cls.__dict__[name]
            self._saved.append((cls, name, original))
            setattr(cls, name, self._wrap(phase, original))
        return self

    def __exit__(self, *exc) -> None:
        while self._saved:
            cls, name, original = self._saved.pop()
            setattr(cls, name, original)

    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        """Seconds attributed across all phases."""
        return sum(self.phases.values())

    def report(self) -> List[Tuple[str, float, float]]:
        """``(phase, cumulative seconds, share of attributed time)``
        rows in pipeline order."""
        total = self.total
        return [
            (phase, self.phases[phase],
             self.phases[phase] / total if total else 0.0)
            for phase in PHASE_ORDER
        ]
