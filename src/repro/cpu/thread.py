"""Per-hardware-thread architectural and pipeline state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.branch.predictor import BranchPredictor
from repro.cpu.counters import PerfCounters

#: General-purpose register names.  ``rsp`` is the stack pointer;
#: ``flags`` holds the condition codes as a small bitfield.
GPR_NAMES = tuple(f"r{i}" for i in range(16)) + ("rsp", "flags")

#: Default stack top for each thread (grows down, 64 KiB apart).
STACK_TOP = 0x00F0_0000

USER_PRIV = 3
KERNEL_PRIV = 0


def fresh_registers(thread_id: int = 0) -> Dict[str, int]:
    """Initial architectural register file for a thread."""
    regs = {name: 0 for name in GPR_NAMES}
    regs["rsp"] = STACK_TOP - 0x1_0000 * thread_id
    return regs


@dataclass(slots=True)
class ThreadContext:
    """One SMT hardware context.

    Architectural state (``regs``, ``privilege``) is checkpointed and
    restored across speculation; fetch-side state (``fetch_rip``,
    ``fetch_priv``, ``fetch_clock``) tracks the *speculative* front-end
    position, which runs ahead of -- and is resteered independently of --
    the architectural state.

    Slotted: every field below is touched on the per-uop hot path, and
    the replay engine restores them by plain attribute assignment
    (:mod:`repro.cpu.engine`), so there is no dynamic-attribute use.
    """

    thread_id: int = 0
    regs: Dict[str, int] = None  # type: ignore[assignment]
    privilege: int = USER_PRIV
    halted: bool = True

    # Front-end state
    fetch_rip: int = 0
    fetch_priv: int = USER_PRIV
    fetch_clock: int = 0
    last_source: str = "none"  # "dsb" | "mite" | "none"
    kernel_link: List[int] = field(default_factory=list)  # SYSCALL return RIPs

    # Backend scoreboard state
    reg_ready: Dict[str, int] = field(default_factory=dict)
    exec_floor: int = 0  # fences raise this
    oldest_inflight_done: int = 0  # running max of completions (for LFENCE)
    dispatch_cycle: int = 0
    dispatch_slots_used: int = 0
    last_retire: int = 0
    last_rdtsc: int = 0  # previous RDTSC value (monotonicity clamp)

    counters: PerfCounters = field(default_factory=PerfCounters)
    predictor: BranchPredictor = field(default_factory=BranchPredictor)

    def __post_init__(self) -> None:
        if self.regs is None:
            self.regs = fresh_registers(self.thread_id)

    def reset_pipeline_clocks(self) -> None:
        """Zero timing state (between independent experiment phases)."""
        self.fetch_clock = 0
        self.reg_ready.clear()
        self.exec_floor = 0
        self.oldest_inflight_done = 0
        self.dispatch_cycle = 0
        self.dispatch_slots_used = 0
        self.last_retire = 0
        self.last_rdtsc = 0
        self.last_source = "none"
