"""Optional interference noise.

The simulator is deterministic; real machines are not.  The paper's
channels see 0.2-5.6% raw error rates from OS/SMT interference and
measurement jitter.  ``NoiseModel`` injects the two effects the
channels are actually sensitive to -- spurious micro-op cache
evictions (co-runner code fetches) and RDTSC jitter -- behind a seeded
RNG so experiments remain reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.uopcache.cache import UopCache


class NoiseModel:
    """Seeded interference injector.

    ``evict_prob`` is the per-fetch-block probability that one random
    micro-op cache line is evicted (modelling unrelated code sharing
    the structure); ``jitter_sd`` is the standard deviation, in cycles,
    of Gaussian noise added to RDTSC reads.
    """

    def __init__(
        self,
        evict_prob: float = 0.0,
        jitter_sd: float = 0.0,
        seed: int = 0,
    ):
        if not 0.0 <= evict_prob <= 1.0:
            raise ValueError("evict_prob must be a probability")
        self.evict_prob = evict_prob
        self.jitter_sd = jitter_sd
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: Optional[int] = None) -> None:
        """Rewind the RNG to its initial seed (or adopt a new one).

        ``Core.reset()`` calls this so a reset-core trial draws the
        exact same noise sequence as a fresh-core trial.
        """
        if seed is not None:
            self.seed = seed
        self._rng = random.Random(self.seed)

    def maybe_evict(self, uop_cache: UopCache) -> None:
        """Possibly evict one random resident line."""
        if self.evict_prob <= 0.0:
            return
        if self._rng.random() >= self.evict_prob:
            return
        uop_cache.evict_random(self._rng)

    def rdtsc_jitter(self) -> int:
        """Cycles of jitter to add to one RDTSC read.

        May be negative; the backend clamps the jittered read at the
        point of use so consecutive RDTSC values stay monotonic (a
        short probe's delta can therefore be squeezed toward zero, but
        never go negative and wrap).
        """
        if self.jitter_sd <= 0.0:
            return 0
        return int(round(self._rng.gauss(0.0, self.jitter_sd)))
