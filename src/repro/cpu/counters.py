"""Performance counters.

Mirrors the hardware events the paper reads through nanoBench
(Section III) and in Table II: micro-ops delivered per source
(DSB / MITE / MSROM), DSB miss penalty cycles, LLC references and
misses, branch mispredictions, and squash accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Per-thread counter block; snapshot/delta for scoped measurement.

    Deliberately *not* slotted: the replay engine
    (:mod:`repro.cpu.engine`) records and restores counter blocks
    through ``__dict__``, which ``__slots__`` would remove.
    """

    uops_dsb: int = 0  # IDQ.DSB_UOPS
    uops_mite: int = 0  # IDQ.MITE_UOPS ("from the legacy decode pipeline")
    uops_msrom: int = 0  # IDQ.MS_UOPS
    dsb_miss_penalty_cycles: int = 0  # DSB2MITE_SWITCHES.PENALTY_CYCLES (+decode)
    dsb_switches: int = 0
    dsb_hits: int = 0  # region-granular
    dsb_misses: int = 0
    icache_misses: int = 0
    itlb_misses: int = 0
    fetch_blocks: int = 0
    macro_ops_decoded: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    squashes: int = 0
    squashed_uops: int = 0
    retired_uops: int = 0
    retired_instructions: int = 0
    syscalls: int = 0
    llc_refs: int = 0
    llc_misses: int = 0
    l1d_refs: int = 0
    l1d_misses: int = 0

    def snapshot(self) -> "PerfCounters":
        """Copy of the current values."""
        return PerfCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, since: "PerfCounters") -> "PerfCounters":
        """Counter difference ``self - since``."""
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    @property
    def uops_total(self) -> int:
        """All delivered micro-ops regardless of source."""
        return self.uops_dsb + self.uops_mite + self.uops_msrom

    @property
    def uops_legacy(self) -> int:
        """Micro-ops from the legacy decode pipeline (MITE + MSROM) --
        the y-axis of Figures 3, 6 and 7."""
        return self.uops_mite + self.uops_msrom

    def as_dict(self) -> dict:
        """Plain-dict view (reporting/serialisation)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
