"""Error-correction coding substrate.

Table I of the paper reports covert-channel bandwidth both raw and
with Reed-Solomon error correction ("inflates file size by roughly
20%, providing ... no errors").  This package implements RS(n, k) over
GF(256) from scratch: encoder, syndrome computation, Berlekamp-Massey,
Chien search and Forney's algorithm.
"""

from repro.coding.gf256 import GF256
from repro.coding.reed_solomon import RSCodec, RSDecodeError

__all__ = ["GF256", "RSCodec", "RSDecodeError"]
