"""Systematic Reed-Solomon codec over GF(256).

``RSCodec(nsym)`` appends ``nsym`` parity bytes per block and corrects
up to ``nsym // 2`` byte errors at unknown positions -- the decoder
implements syndromes, Berlekamp-Massey, Chien search and Forney.

The covert channels use it exactly as the paper does: the sender
encodes the payload (roughly 20% inflation at the paper's operating
point), the receiver decodes and the residual error rate drops to zero
for raw channel error rates within the code's correction budget.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.coding.gf256 import GF256


class RSDecodeError(Exception):
    """Raised when a block has more errors than the code can correct."""


class RSCodec:
    """Systematic RS(n, k) over GF(256) with n = k + nsym <= 255."""

    def __init__(self, nsym: int = 32, block: int = 255):
        if not 0 < nsym < block <= 255:
            raise ValueError("need 0 < nsym < block <= 255")
        self.nsym = nsym
        self.block = block
        self.gf = GF256()
        self._gen = self._generator_poly(nsym)

    # ------------------------------------------------------------------

    @property
    def payload_per_block(self) -> int:
        """Data bytes carried per code block."""
        return self.block - self.nsym

    @property
    def overhead(self) -> float:
        """Size inflation factor (encoded / raw)."""
        return self.block / self.payload_per_block

    def _generator_poly(self, nsym: int) -> List[int]:
        gen = [1]
        for i in range(nsym):
            gen = self.gf.poly_mul(gen, [1, self.gf.pow(2, i)])
        return gen

    # ------------------------------------------------------------------
    # encode

    def encode_block(self, data: Sequence[int]) -> List[int]:
        """Encode one block of at most ``payload_per_block`` bytes."""
        if len(data) > self.payload_per_block:
            raise ValueError("block payload too large")
        msg = list(data) + [0] * self.nsym
        for i in range(len(data)):
            coef = msg[i]
            if coef:
                for j in range(1, len(self._gen)):
                    msg[i + j] ^= self.gf.mul(self._gen[j], coef)
        return list(data) + msg[len(data):]

    def encode(self, data: bytes) -> bytes:
        """Encode arbitrary-length data as consecutive blocks."""
        out = bytearray()
        k = self.payload_per_block
        for off in range(0, len(data), k):
            out.extend(self.encode_block(data[off:off + k]))
        return bytes(out)

    # ------------------------------------------------------------------
    # decode

    def _syndromes(self, msg: Sequence[int]) -> List[int]:
        return [self.gf.poly_eval(list(msg), self.gf.pow(2, i))
                for i in range(self.nsym)]

    def _berlekamp_massey(self, synd: List[int]) -> List[int]:
        gf = self.gf
        err_loc = [1]
        old_loc = [1]
        for i in range(len(synd)):
            old_loc.append(0)
            delta = synd[i]
            for j in range(1, len(err_loc)):
                delta ^= gf.mul(err_loc[-(j + 1)], synd[i - j])
            if delta != 0:
                if len(old_loc) > len(err_loc):
                    new_loc = gf.poly_scale(old_loc, delta)
                    old_loc = gf.poly_scale(err_loc, gf.inverse(delta))
                    err_loc = new_loc
                err_loc = gf.poly_add(err_loc, gf.poly_scale(old_loc, delta))
        while err_loc and err_loc[0] == 0:
            err_loc.pop(0)
        return err_loc

    def _find_errors(self, err_loc: List[int], nmess: int) -> List[int]:
        gf = self.gf
        errs = len(err_loc) - 1
        positions = []
        for i in range(nmess):
            if gf.poly_eval(err_loc, gf.pow(2, i)) == 0:
                positions.append(nmess - 1 - i)
        if len(positions) != errs:
            raise RSDecodeError(
                f"located {len(positions)} errors, expected {errs}"
            )
        return positions

    def _correct(
        self, msg: List[int], synd: List[int], positions: List[int]
    ) -> List[int]:
        """Forney's algorithm: compute and apply error magnitudes."""
        gf = self.gf
        nmess = len(msg)
        coef_pos = [nmess - 1 - p for p in positions]
        # Error locator Lambda(x) = prod_i (1 + X_i x), X_i = 2^p_i.
        # Coefficient lists are highest-degree-first.
        loc = [1]
        for p in coef_pos:
            loc = gf.poly_mul(loc, [gf.pow(2, p), 1])
        # Error evaluator Omega(x) = S(x) * Lambda(x) mod x^nsym, where
        # S(x) = synd[0] + synd[1] x + ...  (so highest-first is the
        # reversed syndrome list).
        omega = gf.poly_mul(list(reversed(synd)), loc)
        omega = omega[-self.nsym:]
        for i, p in enumerate(coef_pos):
            x = gf.pow(2, p)
            x_inv = gf.inverse(x)
            # Lambda'(X_i^{-1}) = X_i * prod_{j != i} (1 + X_j X_i^{-1});
            # the leading X_i cancels against the X_i^{1-fcr} numerator
            # factor (fcr = 0 here), leaving only the product below.
            denom = 1
            for j, q in enumerate(coef_pos):
                if j != i:
                    denom = gf.mul(denom, 1 ^ gf.mul(x_inv, gf.pow(2, q)))
            if denom == 0:
                raise RSDecodeError("Forney denominator is zero")
            magnitude = gf.div(gf.poly_eval(omega, x_inv), denom)
            msg[positions[i]] ^= magnitude
        return msg

    def decode_block(self, received: Sequence[int]) -> List[int]:
        """Decode one block; returns the corrected payload bytes."""
        msg = list(received)
        synd = self._syndromes(msg)
        if max(synd) == 0:
            return msg[: -self.nsym]
        err_loc = self._berlekamp_massey(synd)
        errs = len(err_loc) - 1
        if errs * 2 > self.nsym:
            raise RSDecodeError(f"{errs} errors exceed correction capacity")
        positions = self._find_errors(list(reversed(err_loc)), len(msg))
        msg = self._correct(msg, synd, positions)
        if max(self._syndromes(msg)) != 0:
            raise RSDecodeError("residual syndromes after correction")
        return msg[: -self.nsym]

    def decode(self, received: bytes) -> bytes:
        """Decode consecutive blocks produced by :meth:`encode`."""
        if len(received) % self.block and len(received) > self.block:
            # trailing short block is allowed only as the final block
            pass
        out = bytearray()
        for off in range(0, len(received), self.block):
            chunk = list(received[off:off + self.block])
            out.extend(self.decode_block(chunk))
        return bytes(out)
