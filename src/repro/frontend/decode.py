"""Legacy decode pipeline (MITE) cost model.

Models the decoder organisations of Section II-A:

- Skylake: four 1:1 decoders plus one 1:4 decoder, peak 5 uops/cycle;
  instructions over 4 uops go to the MSROM.
- Zen: four 1:2 decoders; instructions over 2 uops go to the microcode
  ROM.

The MSROM takes over the whole decode group while sequencing, which is
why microcoded instructions are so slow to deliver -- and why a
micro-op cache hit (skipping all of this) is such a sharp timing
signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cpu.config import CPUConfig
from repro.isa.instruction import MacroOp, UopKind


class _FusedPair:
    """A macro-fused cmp/test + jcc pair as seen by the decoders: one
    decode slot, one uop of bandwidth."""

    msrom = False
    uop_count = 1

    def __init__(self, first: MacroOp, second: MacroOp):
        self.first = first
        self.second = second
        self.mnemonic = f"{first.mnemonic}+{second.mnemonic}"


def effective_msrom(macro: MacroOp, config: CPUConfig) -> bool:
    """True if this macro-op is microcoded *on this CPU*.

    Templates mark architecturally microcoded instructions
    (CPUID/SYSCALL...); additionally, any instruction wider than the
    decode style's threshold is relegated to microcode -- e.g. a 3-uop
    instruction decodes normally on Skylake (1:4 decoder) but is
    microcoded on Zen (1:2 decoders).
    """
    return macro.msrom or macro.uop_count > config.msrom_threshold


@dataclass
class DecodeResult:
    """Cost and per-source uop counts of decoding one fetch group."""

    cycles: int
    mite_uops: int
    msrom_uops: int
    macro_ops: int


def _fusible_pair(first: MacroOp, second: MacroOp) -> bool:
    """Macro-fusion eligibility: a flag-producing single-uop test/cmp
    (or flag-setting ALU) immediately followed by a conditional branch
    fuses into one decode slot (Section II-C's bandwidth optimisation)."""
    if second.branch_kind.value != "jcc":
        return False
    if first.uop_count != 1 or first.msrom:
        return False
    kind = first.uops[0].kind
    return kind in (UopKind.CMP, UopKind.TEST) or first.uops[0].sets_flags


def decode_cost(macros: Sequence[MacroOp], config: CPUConfig) -> DecodeResult:
    """Cycles to push ``macros`` through the legacy decoders.

    Greedy grouping: each cycle packs macro-ops into the available
    decoders until a structural limit is hit (decoder count, complex
    decoder occupancy, uop width); a microcoded instruction flushes the
    group and sequences alone from the MSROM.  With
    ``config.macro_fusion``, an eligible cmp/test + jcc pair occupies a
    single decoder slot and a single uop of the width budget.
    """
    cycles = 0
    mite_uops = 0
    msrom_uops = 0

    group_macros = 0
    group_uops = 0
    group_complex = 0

    def close_group() -> None:
        nonlocal cycles, group_macros, group_uops, group_complex
        if group_macros:
            cycles += 1
            group_macros = 0
            group_uops = 0
            group_complex = 0

    macros = list(macros)
    if config.macro_fusion:
        fused: list = []
        i = 0
        while i < len(macros):
            if i + 1 < len(macros) and _fusible_pair(macros[i], macros[i + 1]):
                fused.append(_FusedPair(macros[i], macros[i + 1]))
                i += 2
            else:
                fused.append(macros[i])
                i += 1
        macros = fused

    for macro in macros:
        n = macro.uop_count
        if effective_msrom(macro, config):
            close_group()
            seq_cycles = max(
                config.msrom_min_cycles,
                -(-n // config.msrom_uops_per_cycle),  # ceil division
            )
            cycles += seq_cycles
            msrom_uops += n
            continue
        if config.decode_style == "skylake":
            is_complex = n > 1
            fits = (
                group_macros < 5
                and group_uops + n <= config.max_decode_uops_per_cycle
                and (not is_complex or group_complex == 0)
            )
            if not fits:
                close_group()
            group_macros += 1
            group_uops += n
            group_complex += 1 if is_complex else 0
        else:  # zen: four decoders, each up to 2 uops
            fits = (
                group_macros < 4
                and group_uops + n <= config.max_decode_uops_per_cycle
            )
            if not fits:
                close_group()
            group_macros += 1
            group_uops += n
        mite_uops += n
    close_group()

    return DecodeResult(
        cycles=max(cycles, 1),
        mite_uops=mite_uops,
        msrom_uops=msrom_uops,
        macro_ops=len(macros),
    )


def predecode_cost(total_bytes: int, lcp_count: int, config: CPUConfig) -> int:
    """Cycles for the 16-byte-per-cycle predecoder to length-decode a
    fetch group, including the 3-6 cycle penalty per length-changing
    prefix (we charge ``lcp_penalty`` per LCP)."""
    fetch_cycles = -(-max(total_bytes, 1) // config.fetch_bytes_per_cycle)
    return fetch_cycles + config.lcp_penalty * lcp_count
