"""The x86 decode pipeline model: fetch, predecode, decoders, MSROM,
and delivery either from the micro-op cache (DSB path) or the legacy
decode pipeline (MITE path), with the one-cycle switch penalty the
paper identifies as the root of the timing channel.
"""

from repro.frontend.decode import DecodeResult, decode_cost, effective_msrom
from repro.frontend.pipeline import FetchBlock, FetchedUop, FrontEnd

__all__ = [
    "DecodeResult",
    "FetchBlock",
    "FetchedUop",
    "FrontEnd",
    "decode_cost",
    "effective_msrom",
]
