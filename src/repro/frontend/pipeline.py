"""Front-end fetch/delivery engine.

``FrontEnd.fetch_block`` advances one hardware thread's fetch stream by
one *block*: the micro-ops delivered from the current fetch address up
to the first predicted-taken branch, serialising instruction, or
32-byte region boundary.  Delivery comes either from the micro-op
cache (DSB path: up to 6 uops/cycle, no ICache access, no decode) or
from the legacy pipeline (MITE path: ICache access, 16B/cycle
predecode with LCP stalls, decoder grouping, MSROM sequencing), with
the one-cycle switch penalty charged on every DSB<->MITE transition.

Two documented simplifications (DESIGN.md):

- a region's cached content is built from the *full* region walk
  (decoding through not-taken conditional branches up to the region
  end or first unconditional jump), so cached content is independent
  of branch predictions; predictions cut the *delivery* instead;
- on a DSB hit, delivered micro-ops are re-derived from the program
  (identical by construction to the cached packing), the cached lines
  being authoritative for capacity/timing only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.branch.predictor import Prediction
from repro.cpu.config import CPUConfig
from repro.cpu.thread import KERNEL_PRIV, ThreadContext, USER_PRIV
from repro.frontend.decode import decode_cost, effective_msrom, predecode_cost
from repro.isa.instruction import BranchKind, MacroOp, MicroOp, UopKind, region_of
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.observe.events import BRANCH_PREDICT, ITLB_FILL
from repro.uopcache.cache import UopCache
from repro.uopcache.placement import LineSpec, build_lines


@dataclass(slots=True)
class FetchedUop:
    """A dynamic micro-op instance in flight."""

    uop: MicroOp
    macro: MacroOp
    source: str  # "dsb" | "mite" | "msrom"
    pred: Optional[Prediction] = None  # set on control uops
    seq: int = 0  # global dynamic sequence number (core-assigned)
    fetch_cycle: int = 0
    dispatch_cycle: int = 0
    exec_start: int = 0
    exec_done: int = 0
    squashed: bool = False


#: Block termination kinds.
BLOCK_SEQ = "seq"  # fell through to the next region
BLOCK_TAKEN = "taken"  # predicted-taken branch redirected fetch
BLOCK_STALL = "stall_indirect"  # unpredicted indirect/ret: wait for resolve
BLOCK_HALT = "halt"  # HALT fetched
BLOCK_CPUID = "cpuid"  # serialising instruction: fetch stalls until done
BLOCK_FAULT = "fault"  # wild fetch or privilege violation


@dataclass(slots=True)
class FetchBlock:
    """Result of one fetch step."""

    entry: int
    dynuops: List[FetchedUop]
    kind: str
    next_rip: Optional[int]
    source: str
    cycles: int


@dataclass(slots=True)
class _RegionWalk:
    """Memoized prediction-independent decode of one region entry."""

    macros: Tuple[MacroOp, ...]
    specs: Optional[List[LineSpec]]  # None => not cacheable


class FrontEnd:
    """Fetch and decode engine shared by all threads of a core."""

    __slots__ = (
        "config",
        "program",
        "uop_cache",
        "hierarchy",
        "_walks",
        "smt_active",
        "observer",
    )

    def __init__(
        self,
        config: CPUConfig,
        program: Program,
        uop_cache: UopCache,
        hierarchy: MemoryHierarchy,
    ):
        self.config = config
        self.program = program
        self.uop_cache = uop_cache
        self.hierarchy = hierarchy
        self._walks: Dict[int, _RegionWalk] = {}
        self.smt_active = False
        #: Observability bus (set by ``Core.observe()``, None = no hooks).
        self.observer = None

    # ------------------------------------------------------------------

    def invalidate_walk_cache(self) -> None:
        """Drop memoized region walks (after program changes)."""
        self._walks.clear()

    def _walk_region(self, rip: int) -> _RegionWalk:
        """Decode from ``rip`` to the region end / first unconditional
        control / serialising instruction, prediction-independently."""
        walk = self._walks.get(rip)
        if walk is not None:
            return walk
        macros: List[MacroOp] = []
        region = region_of(rip, self.config.region_bytes)
        addr = rip
        while True:
            macro = self.program.at(addr)
            if macro is None:
                break
            if addr != rip and region_of(addr, self.config.region_bytes) != region:
                break
            macros.append(macro)
            kind = macro.branch_kind
            if kind not in (BranchKind.NONE, BranchKind.JCC):
                break  # unconditional control transfer ends the walk
            if any(u.kind in (UopKind.HALT, UopKind.CPUID) for u in macro.uops):
                break
            addr = macro.end
        specs = None
        if macros:
            specs = build_lines(
                macros,
                uops_per_line=self.config.uops_per_line,
                max_lines_per_region=self.config.max_lines_per_region,
            )
        walk = _RegionWalk(macros=tuple(macros), specs=specs)
        self._walks[rip] = walk
        return walk

    # ------------------------------------------------------------------

    def fetch_block(self, thread: ThreadContext) -> FetchBlock:
        """Fetch/deliver one block for ``thread`` and charge its clock."""
        config = self.config
        entry = thread.fetch_rip
        counters = thread.counters
        counters.fetch_blocks += 1

        walk = self._walk_region(entry)
        if not walk.macros:
            return FetchBlock(entry, [], BLOCK_FAULT, None, "none", 0)
        if self.program.is_kernel_code(entry) and thread.fetch_priv != KERNEL_PRIV:
            return FetchBlock(entry, [], BLOCK_FAULT, None, "none", 0)

        # --- DSB lookup -------------------------------------------------
        hit_lines = None
        if config.uop_cache_enabled:
            hit_lines = self.uop_cache.lookup(
                thread.thread_id, entry, thread.fetch_priv
            )
            if hit_lines is not None:
                counters.dsb_hits += 1
            else:
                counters.dsb_misses += 1
        source = "dsb" if hit_lines is not None else "mite"

        # --- delivery walk with prediction cuts -------------------------
        # (hot path: predictor and uop-source tallies hoisted out of the
        # per-uop work -- sources are counted per macro here instead of
        # in a second pass over dynuops)
        dynuops: List[FetchedUop] = []
        delivered_macros: List[MacroOp] = []
        kind = BLOCK_SEQ
        next_rip: Optional[int] = None
        predictor = thread.predictor
        n_dsb = n_mite = n_msrom = 0
        for macro in walk.macros:
            msource = "msrom" if effective_msrom(macro, config) else source
            first = len(dynuops)
            for uop in macro.uops:
                dynuops.append(FetchedUop(uop=uop, macro=macro, source=msource))
            if msource == "msrom":
                n_msrom += len(macro.uops)
            elif msource == "dsb":
                n_dsb += len(macro.uops)
            else:
                n_mite += len(macro.uops)
            delivered_macros.append(macro)
            bkind = macro.branch_kind
            if bkind is BranchKind.JCC:
                pred = predictor.predict(macro)
                dynuops[first].pred = pred
                counters.branches += 1
                if pred.taken:
                    kind = BLOCK_TAKEN
                    next_rip = pred.target
                    break
                continue
            if bkind in (BranchKind.JMP, BranchKind.CALL):
                pred = predictor.predict(macro)
                dynuops[first].pred = pred
                counters.branches += 1
                kind = BLOCK_TAKEN
                next_rip = macro.target
                break
            if bkind in (BranchKind.JMP_IND, BranchKind.CALL_IND, BranchKind.RET):
                pred = predictor.predict(macro)
                dynuops[first].pred = pred
                counters.branches += 1
                if pred.target is None:
                    kind = BLOCK_STALL
                    next_rip = None
                else:
                    kind = BLOCK_TAKEN
                    next_rip = pred.target
                break
            if bkind is BranchKind.SYSCALL:
                kernel_entry = self.program.labels.get("kernel_entry")
                if kernel_entry is None:
                    kind = BLOCK_FAULT
                    break
                thread.kernel_link.append(macro.end)
                thread.fetch_priv = KERNEL_PRIV
                counters.syscalls += 1
                kind = BLOCK_TAKEN
                next_rip = kernel_entry
                if config.flush_uop_cache_on_domain_crossing:
                    self.uop_cache.flush()
                break
            if bkind is BranchKind.SYSRET:
                if not thread.kernel_link:
                    kind = BLOCK_FAULT
                    break
                thread.fetch_priv = USER_PRIV
                kind = BLOCK_TAKEN
                next_rip = thread.kernel_link.pop()
                if config.flush_uop_cache_on_domain_crossing:
                    self.uop_cache.flush()
                break
            if any(u.kind is UopKind.HALT for u in macro.uops):
                kind = BLOCK_HALT
                next_rip = macro.end
                break
            if any(u.kind is UopKind.CPUID for u in macro.uops):
                kind = BLOCK_CPUID
                next_rip = macro.end
                break
        else:
            next_rip = walk.macros[-1].end  # sequential fall-through

        # --- timing and counters ----------------------------------------
        switch = thread.last_source not in (source, "none")
        cycles = config.dsb_mite_switch_penalty if switch else 0
        if switch:
            counters.dsb_switches += 1

        n_delivered = len(dynuops)
        if source == "dsb":
            cycles += -(-n_delivered // config.dsb_uops_per_cycle)
        else:
            hierarchy = self.hierarchy
            itlb_misses_before = hierarchy.itlb.misses
            access = hierarchy.access_inst(entry)
            if access.level != "L1":
                counters.icache_misses += 1
            itlb_missed = hierarchy.itlb.misses - itlb_misses_before
            counters.itlb_misses += itlb_missed
            if itlb_missed:
                obs = self.observer
                if obs is not None and obs.wants(ITLB_FILL):
                    obs.emit(
                        ITLB_FILL,
                        thread.fetch_clock,
                        thread.thread_id,
                        entry=entry,
                        page=hierarchy.itlb.page_of(entry),
                    )
            extra = max(0, access.latency - hierarchy.l1i.latency)
            total_bytes = sum(m.length for m in delivered_macros)
            lcp = sum(m.lcp_count for m in delivered_macros)
            mite_cycles = (
                predecode_cost(total_bytes, lcp, config)
                + decode_cost(delivered_macros, config).cycles
            )
            if self.smt_active and config.smt_decode_shared:
                mite_cycles *= 2
            penalty = mite_cycles + extra + (
                config.dsb_mite_switch_penalty if switch else 0
            )
            counters.dsb_miss_penalty_cycles += penalty
            counters.macro_ops_decoded += len(delivered_macros)
            cycles += mite_cycles + extra
            # Fill the micro-op cache with the full region packing.
            if config.uop_cache_enabled and walk.specs is not None:
                self.uop_cache.fill(
                    thread.thread_id, entry, walk.specs, thread.fetch_priv
                )

        counters.uops_dsb += n_dsb
        counters.uops_msrom += n_msrom
        counters.uops_mite += n_mite

        thread.last_source = source
        thread.fetch_clock += max(cycles, 1)
        fetch_clock = thread.fetch_clock
        for du in dynuops:
            du.fetch_cycle = fetch_clock

        obs = self.observer
        if obs is not None and obs.wants(BRANCH_PREDICT):
            for du in dynuops:
                pred = du.pred
                if pred is None:
                    continue
                obs.emit(
                    BRANCH_PREDICT,
                    thread.fetch_clock,
                    thread.thread_id,
                    rip=du.macro.addr,
                    taken=pred.taken,
                    target=pred.target,
                )

        return FetchBlock(entry, dynuops, kind, next_rip, source, cycles)
