"""Two-pass assembler for the synthetic ISA.

Usage mirrors the NASM-style listings in the paper::

    asm = Assembler(base=0x40_0000)
    asm.label("region_0")
    asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))   # one 32-byte region
    asm.align(1024)
    asm.label("region_1")
    asm.emit(enc.jmp("exit"))
    ...
    program = asm.assemble(entry="region_0")

Instruction lengths are fixed per template (no relaxation), so layout
is final on the first pass; the second pass only resolves label
targets into macro-ops and their branch micro-ops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import MacroOp
from repro.isa.program import Program


class AssemblyError(Exception):
    """Raised for layout conflicts, unknown labels, or misalignment."""


class Assembler:
    """Places macro-ops in a virtual address space and resolves labels."""

    def __init__(self, base: int = 0x40_0000, data_base: int = 0x80_0000):
        if base & 0xF:
            raise AssemblyError("code base should be 16-byte aligned")
        self._cursor = base
        self._data_cursor = data_base
        self._instrs: List[MacroOp] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, bytes] = {}
        self._spans: List[Tuple[int, int]] = []  # (start, end) emitted code

    @property
    def cursor(self) -> int:
        """Next code address to be emitted to."""
        return self._cursor

    def label(self, name: str) -> int:
        """Define ``name`` at the current cursor; returns the address."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = self._cursor
        return self._cursor

    def label_at(self, name: str, addr: int) -> None:
        """Define ``name`` at an explicit address (e.g. a data symbol)."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = addr

    def align(self, boundary: int, pad: bool = True) -> int:
        """Advance the cursor to the next multiple of ``boundary``.

        With ``pad=True`` (default) the gap is filled with multi-byte
        NOPs, exactly as a real assembler's ``.align`` does -- so code
        that falls through the boundary stays executable.  ``pad=False``
        leaves a hole (only safe when control flow always jumps over).
        """
        if boundary <= 0 or boundary & (boundary - 1):
            raise AssemblyError(f"alignment must be a power of two, got {boundary}")
        rem = self._cursor % boundary
        if rem:
            gap = boundary - rem
            if pad:
                from repro.isa import encodings as _enc

                while gap > 0:
                    chunk = min(15, gap)
                    self.emit(_enc.nop(chunk))
                    gap -= chunk
            else:
                self._cursor += gap
        return self._cursor

    def org(self, addr: int) -> int:
        """Move the cursor to an absolute address (must not move back
        into an already-emitted span)."""
        for start, end in self._spans:
            if start <= addr < end:
                raise AssemblyError(
                    f".org 0x{addr:x} lands inside emitted code [0x{start:x}, 0x{end:x})"
                )
        self._cursor = addr
        return self._cursor

    def emit(self, *instrs: MacroOp) -> int:
        """Place one or more instructions at the cursor, in order.

        Returns the address of the first instruction emitted.
        """
        if not instrs:
            raise AssemblyError("emit() needs at least one instruction")
        first = self._cursor
        for instr in instrs:
            instr.bind(self._cursor)
            self._instrs.append(instr)
            self._spans.append((self._cursor, self._cursor + instr.length))
            self._cursor += instr.length
        return first

    def data(self, name: str, payload: bytes, align: int = 64) -> int:
        """Reserve ``payload`` in the data segment under ``name``.

        Data is 64-byte (cache-line) aligned by default so FLUSH+RELOAD
        probe arrays behave as on real hardware.
        """
        rem = self._data_cursor % align
        if rem:
            self._data_cursor += align - rem
        addr = self._data_cursor
        self.label_at(name, addr)
        self._data[addr] = bytes(payload)
        self._data_cursor += len(payload)
        return addr

    def reserve(self, name: str, size: int, align: int = 64) -> int:
        """Reserve ``size`` zero bytes in the data segment."""
        return self.data(name, bytes(size), align=align)

    def patch_data(self, name: str, payload: bytes) -> None:
        """Replace the payload of an existing data symbol.

        For self-referential data (e.g. pointer chains) whose contents
        depend on the address the symbol was assigned: reserve first,
        build the bytes using the returned address, then patch.
        """
        addr = self.resolve(name)
        if addr not in self._data:
            raise AssemblyError(f"{name!r} is not a data symbol")
        if len(payload) > len(self._data[addr]):
            raise AssemblyError(
                f"patch for {name!r} ({len(payload)} bytes) exceeds its "
                f"reservation ({len(self._data[addr])} bytes)"
            )
        self._data[addr] = bytes(payload)

    def resolve(self, name: str) -> int:
        """Address of a previously defined label."""
        try:
            return self._labels[name]
        except KeyError:
            raise AssemblyError(f"undefined label {name!r}") from None

    def assemble(self, entry: Optional[str] = None) -> Program:
        """Resolve all branch targets and produce a :class:`Program`."""
        self._check_overlaps()
        for instr in self._instrs:
            if instr.target_label is not None:
                target = self.resolve(instr.target_label)
                instr.target = target
                for uop in instr.uops:
                    if uop.is_branch:
                        uop.target = target
        entry_addr = self.resolve(entry) if entry is not None else (
            self._instrs[0].addr if self._instrs else 0
        )
        return Program(
            instructions={i.addr: i for i in self._instrs},
            labels=dict(self._labels),
            data=dict(self._data),
            entry=entry_addr,
        )

    def _check_overlaps(self) -> None:
        spans = sorted(self._spans)
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            if s1 < e0:
                raise AssemblyError(
                    f"overlapping instructions at [0x{s0:x},0x{e0:x}) and 0x{s1:x}"
                )
