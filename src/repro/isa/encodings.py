"""Instruction templates.

Every function returns a fresh :class:`~repro.isa.instruction.MacroOp`.
Byte lengths are chosen to match common x86-64 encodings so that the
paper's alignment-sensitive microbenchmarks (Listings 1-3) translate
directly: multi-byte NOPs of every length 1..15, two-byte short jumps,
five-byte near jumps, ten-byte ``mov r64, imm64``, and so on.

Branch-carrying templates accept a label string; the assembler resolves
it to an address and patches both the macro-op and its branch micro-op.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import BranchKind, MacroOp, MicroOp, UopKind

# Latency classes (cycles) for the backend scoreboard.  Loads get their
# latency from the data-cache hierarchy instead.
_ALU_LAT = 1
_IMUL_LAT = 3
_RDTSC_LAT = 20


def nop(length: int = 1, lcp: int = 0) -> MacroOp:
    """Multi-byte NOP of ``length`` bytes (1..15), decoding to one uop.

    ``lcp`` counts length-changing prefixes attached to the encoding;
    each one stalls the predecoder (Section II-A).  The paper's best
    tigers/zebras pad NOPs and jumps with LCPs to sharpen the timing
    signal (Section IV).
    """
    return MacroOp(
        mnemonic=f"nop{length}",
        length=length,
        lcp_count=lcp,
        uops=(MicroOp(UopKind.NOP),),
    )


def mov_imm(dst: str, value: int, width: int = 32) -> MacroOp:
    """``mov dst, imm``.

    ``width=64`` models ``movabs`` (10 bytes) whose immediate consumes
    *two* micro-op cache slots -- one of the documented placement rules.
    """
    if width == 64:
        return MacroOp(
            mnemonic="mov_imm64",
            length=10,
            uops=(MicroOp(UopKind.MOV_IMM, dst=dst, imm=value, slots=2),),
        )
    if width == 32:
        return MacroOp(
            mnemonic="mov_imm32",
            length=7 if dst.startswith("r") else 5,
            uops=(MicroOp(UopKind.MOV_IMM, dst=dst, imm=value),),
        )
    raise ValueError(f"unsupported immediate width {width}")


def mov(dst: str, src: str) -> MacroOp:
    """``mov dst, src`` register move (3 bytes, one uop)."""
    return MacroOp(
        mnemonic="mov",
        length=3,
        uops=(MicroOp(UopKind.MOV, dst=dst, srcs=(src,)),),
    )


def alu(op: str, dst: str, src: str) -> MacroOp:
    """Register-register ALU op (``add``/``sub``/``and``/``or``/``xor``)."""
    return MacroOp(
        mnemonic=op,
        length=3,
        uops=(
            MicroOp(
                UopKind.ALU,
                dst=dst,
                srcs=(dst, src),
                alu_op=op,
                sets_flags=True,
                latency=_ALU_LAT,
            ),
        ),
    )


def alu_imm(op: str, dst: str, imm: int) -> MacroOp:
    """ALU op with an 8-bit immediate (``shr dst, 3``, ``and dst, 1``...)."""
    return MacroOp(
        mnemonic=f"{op}_imm",
        length=4,
        uops=(
            MicroOp(
                UopKind.ALU_IMM,
                dst=dst,
                srcs=(dst,),
                imm=imm,
                alu_op=op,
                sets_flags=True,
                latency=_IMUL_LAT if op == "imul" else _ALU_LAT,
            ),
        ),
    )


def cmp_imm(src: str, imm: int) -> MacroOp:
    """``cmp src, imm8`` -- sets flags only."""
    return MacroOp(
        mnemonic="cmp_imm",
        length=4,
        uops=(
            MicroOp(UopKind.CMP, srcs=(src,), imm=imm, sets_flags=True),
        ),
    )


def cmp_reg(a: str, b: str) -> MacroOp:
    """``cmp a, b`` -- sets flags only."""
    return MacroOp(
        mnemonic="cmp",
        length=3,
        uops=(MicroOp(UopKind.CMP, srcs=(a, b), sets_flags=True),),
    )


def test_reg(a: str, b: str) -> MacroOp:
    """``test a, b`` -- sets ZF from ``a & b``."""
    return MacroOp(
        mnemonic="test",
        length=3,
        uops=(MicroOp(UopKind.TEST, srcs=(a, b), sets_flags=True),),
    )


def dec(dst: str) -> MacroOp:
    """``dec dst`` -- decrement and set flags (loop idiom)."""
    return MacroOp(
        mnemonic="dec",
        length=3,
        uops=(
            MicroOp(
                UopKind.ALU_IMM,
                dst=dst,
                srcs=(dst,),
                imm=1,
                alu_op="sub",
                sets_flags=True,
            ),
        ),
    )


def load(
    dst: str,
    base: str,
    index: Optional[str] = None,
    scale: int = 1,
    disp: int = 0,
    size: int = 8,
) -> MacroOp:
    """``mov dst, [base + index*scale + disp]`` (one load uop).

    ``size`` is the access width in bytes (1 for ``movzx dst, byte``).
    """
    length = 4 if index is None else 5
    return MacroOp(
        mnemonic="load",
        length=length,
        uops=(
            MicroOp(
                UopKind.LOAD,
                dst=dst,
                base=base,
                index=index,
                scale=scale,
                disp=disp,
                mem_size=size,
            ),
        ),
    )


def store(
    src: str,
    base: str,
    index: Optional[str] = None,
    scale: int = 1,
    disp: int = 0,
    size: int = 8,
) -> MacroOp:
    """``mov [base + index*scale + disp], src`` (one fused store uop)."""
    length = 4 if index is None else 5
    return MacroOp(
        mnemonic="store",
        length=length,
        uops=(
            MicroOp(
                UopKind.STORE,
                srcs=(src,),
                base=base,
                index=index,
                scale=scale,
                disp=disp,
                mem_size=size,
            ),
        ),
    )


def jmp(label: str, short: bool = False, lcp: int = 0) -> MacroOp:
    """Unconditional direct jump.

    ``short=True`` gives the 2-byte rel8 form, otherwise 5-byte rel32.
    The placement rules make this the line terminator in the micro-op
    cache, which is why Listings 2/3 build eviction sets out of jumps.
    """
    return MacroOp(
        mnemonic="jmp",
        length=2 if short else 5,
        lcp_count=lcp,
        branch_kind=BranchKind.JMP,
        target_label=label,
        uops=(MicroOp(UopKind.JMP),),
    )


def jcc(cond: str, label: str, short: bool = False) -> MacroOp:
    """Conditional branch (``jz``/``jnz``/``jl``/``jge``/``jb``/``jae``)."""
    return MacroOp(
        mnemonic=f"j{cond}",
        length=2 if short else 6,
        branch_kind=BranchKind.JCC,
        target_label=label,
        uops=(MicroOp(UopKind.JCC, cond=cond),),
    )


def call(label: str) -> MacroOp:
    """Direct near call (5 bytes): pushes the return address."""
    return MacroOp(
        mnemonic="call",
        length=5,
        branch_kind=BranchKind.CALL,
        target_label=label,
        uops=(MicroOp(UopKind.CALL, base="rsp", latency=2),),
    )


def call_ind(reg: str) -> MacroOp:
    """Indirect call through a register -- the variant-2 transmitter."""
    return MacroOp(
        mnemonic="call_ind",
        length=3,
        branch_kind=BranchKind.CALL_IND,
        uops=(MicroOp(UopKind.CALL_IND, srcs=(reg,), base="rsp", latency=2),),
    )


def jmp_ind(reg: str) -> MacroOp:
    """Indirect jump through a register."""
    return MacroOp(
        mnemonic="jmp_ind",
        length=3,
        branch_kind=BranchKind.JMP_IND,
        uops=(MicroOp(UopKind.JMP_IND, srcs=(reg,)),),
    )


def ret() -> MacroOp:
    """Near return (1 byte): pops the return address."""
    return MacroOp(
        mnemonic="ret",
        length=1,
        branch_kind=BranchKind.RET,
        uops=(MicroOp(UopKind.RET, base="rsp", latency=2),),
    )


def rdtsc(dst: str = "r0") -> MacroOp:
    """Read the time-stamp counter into ``dst``.

    Real RDTSC writes EDX:EAX; we collapse that into a single
    destination register.  It decodes through the complex decoder
    (2 uops) and carries a fixed ~20-cycle latency, which is also its
    serialisation granularity in the timing harness.
    """
    return MacroOp(
        mnemonic="rdtsc",
        length=2,
        uops=(
            MicroOp(UopKind.RDTSC, dst=dst, latency=_RDTSC_LAT),
            MicroOp(UopKind.NOP),
        ),
    )


def clflush(base: str, disp: int = 0) -> MacroOp:
    """``clflush [base+disp]`` -- evict a line from the data hierarchy.

    Needed by the Spectre-v1 FLUSH+RELOAD baseline of Table II.
    """
    return MacroOp(
        mnemonic="clflush",
        length=4,
        uops=(MicroOp(UopKind.CLFLUSH, base=base, disp=disp, latency=4),),
    )


def lfence() -> MacroOp:
    """LFENCE: younger uops may not *dispatch* until it completes.

    Crucially (Section VI-B), it does not stop the front end from
    fetching -- which is the property variant-2 exploits.
    """
    return MacroOp(
        mnemonic="lfence",
        length=3,
        uops=(MicroOp(UopKind.LFENCE, latency=1),),
    )


def mfence() -> MacroOp:
    """MFENCE, modelled with LFENCE-like dispatch serialisation."""
    return MacroOp(
        mnemonic="mfence",
        length=3,
        uops=(MicroOp(UopKind.MFENCE, latency=1),),
    )


def cpuid() -> MacroOp:
    """CPUID: fully serialising -- fetch of younger instructions stalls.

    Microcoded (MSROM), so it also occupies an entire micro-op cache
    line if cached.  Used as the "signal killed" control in Figure 10.
    """
    return MacroOp(
        mnemonic="cpuid",
        length=2,
        msrom=True,
        uops=tuple(
            [MicroOp(UopKind.CPUID, latency=100, from_msrom=True)]
            + [MicroOp(UopKind.MSROM_FLOW, from_msrom=True) for _ in range(5)]
        ),
    )


def pause() -> MacroOp:
    """PAUSE spin-wait hint.

    The characterization study (Section III) observes that PAUSE does
    not get cached in the micro-op cache; ``cacheable=False`` models
    that.
    """
    return MacroOp(
        mnemonic="pause",
        length=2,
        cacheable=False,
        uops=(MicroOp(UopKind.PAUSE, latency=10),),
    )


def syscall() -> MacroOp:
    """SYSCALL: transition to the kernel entry point at privilege 0."""
    return MacroOp(
        mnemonic="syscall",
        length=2,
        msrom=True,
        branch_kind=BranchKind.SYSCALL,
        uops=tuple(
            [MicroOp(UopKind.SYSCALL, latency=30, from_msrom=True)]
            + [MicroOp(UopKind.MSROM_FLOW, from_msrom=True) for _ in range(3)]
        ),
    )


def sysret() -> MacroOp:
    """SYSRET: return to user mode at the saved return address."""
    return MacroOp(
        mnemonic="sysret",
        length=3,
        msrom=True,
        branch_kind=BranchKind.SYSRET,
        uops=tuple(
            [MicroOp(UopKind.SYSRET, latency=30, from_msrom=True)]
            + [MicroOp(UopKind.MSROM_FLOW, from_msrom=True) for _ in range(3)]
        ),
    )


def push(src: str) -> MacroOp:
    """``push src`` (1 byte): decrement rsp, store the register."""
    return MacroOp(
        mnemonic="push",
        length=1,
        uops=(
            MicroOp(
                UopKind.ALU_IMM, dst="rsp", srcs=("rsp",), imm=8,
                alu_op="sub",
            ),
            MicroOp(UopKind.STORE, srcs=(src,), base="rsp"),
        ),
    )


def pop(dst: str) -> MacroOp:
    """``pop dst`` (1 byte): load from rsp, increment it."""
    return MacroOp(
        mnemonic="pop",
        length=1,
        uops=(
            MicroOp(UopKind.LOAD, dst=dst, base="rsp"),
            MicroOp(
                UopKind.ALU_IMM, dst="rsp", srcs=("rsp",), imm=8,
                alu_op="add",
            ),
        ),
    )


def lea(
    dst: str,
    base: str,
    index: Optional[str] = None,
    scale: int = 1,
    disp: int = 0,
) -> MacroOp:
    """``lea dst, [base + index*scale + disp]`` -- address arithmetic
    with no memory access (one ALU-class uop)."""
    return MacroOp(
        mnemonic="lea",
        length=4 if index is None else 5,
        uops=(
            MicroOp(
                UopKind.LEA,
                dst=dst,
                base=base,
                index=index,
                scale=scale,
                disp=disp,
            ),
        ),
    )


def halt() -> MacroOp:
    """Stop the simulated thread (simulation control, not x86 HLT)."""
    return MacroOp(
        mnemonic="halt",
        length=1,
        uops=(MicroOp(UopKind.HALT),),
    )
