"""Parse :mod:`repro.isa.disasm` listings back into programs.

The disassembler promises a *lossless* rendering; this module is the
other half of that contract.  ``parse_listing`` reconstructs an
:class:`~repro.isa.assembler.Assembler` stream from a listing and
reassembles it, and ``signature`` reduces a program to the exact
byte-level facts (addresses, lengths, prefixes, micro-op structure)
two programs must share to be the same code.  The round-trip tests
(``tests/test_disasm_roundtrip.py``) hold both directions together, so
encoding or disassembly drift that would desynchronize lint locations
from real addresses fails immediately.

The grammar is the disassembler's output, nothing more: one
instruction per line (``  0x00400000: mnemonic operands (N uops)``),
optional ``label:`` lines, optional ``; mark`` comments, optional
``(lcp xN)`` prefix annotations.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa import encodings as enc
from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.program import Program


class AsmParseError(AssemblyError):
    """A listing line the parser cannot reconstruct an encoding for."""


_LABEL_RE = re.compile(r"^(\w+):\s*$")
_INSTR_RE = re.compile(r"^\s+(0x[0-9a-fA-F]+):\s+(.*)$")
_UOPS_RE = re.compile(r"\s*\(\d+ uops?\)\s*$")
_LCP_RE = re.compile(r"\s*\(lcp x(\d+)\)\s*$")
_NOP_RE = re.compile(r"^nop(\d+)$")
_REG_RE = re.compile(r"^(r\d+|rsp)$")
_MEM_RE = re.compile(r"^\[(.*)\]$")

#: reg-reg / reg-imm ALU mnemonics the templates emit
_ALU_OPS = ("add", "sub", "and", "or", "xor", "shl", "shr", "imul")
#: bare mnemonics that carry no operands
_BARE = {
    "ret": enc.ret,
    "halt": enc.halt,
    "lfence": enc.lfence,
    "mfence": enc.mfence,
    "cpuid": enc.cpuid,
    "pause": enc.pause,
    "syscall": enc.syscall,
    "sysret": enc.sysret,
}


def _is_reg(token: str) -> bool:
    return bool(_REG_RE.match(token))


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AsmParseError(f"expected a number, got {token!r}")


def _parse_mem(text: str) -> Dict[str, object]:
    """``[base + index*scale + disp]`` -> load/store keyword args."""
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AsmParseError(f"expected a memory operand, got {text!r}")
    base: Optional[str] = None
    index: Optional[str] = None
    scale = 1
    disp = 0
    for term in match.group(1).split("+"):
        term = term.strip()
        if not term:
            continue
        if "*" in term:
            reg, _, factor = term.partition("*")
            index = reg.strip()
            scale = _parse_int(factor.strip())
        elif _is_reg(term):
            base = term
        else:
            disp = _parse_int(term)
    return {"base": base, "index": index, "scale": scale, "disp": disp}


def _split_operands(rest: str) -> List[str]:
    """Split on top-level commas (none occur inside our operands)."""
    return [part.strip() for part in rest.split(",")] if rest else []


def _decode(text: str, lcp: int, target_of: "_TargetFixer"):
    """One listing line's text -> a fresh MacroOp."""
    mnem, _, rest = text.partition(" ")
    rest = rest.strip()
    ops = _split_operands(rest)

    nop_match = _NOP_RE.match(mnem)
    if nop_match:
        return enc.nop(int(nop_match.group(1)), lcp=lcp)
    if lcp and mnem != "jmp":
        raise AsmParseError(f"lcp annotation on {mnem!r} has no encoding")

    if mnem in _BARE:
        if ops:
            raise AsmParseError(f"{mnem} takes no operands, got {rest!r}")
        return _BARE[mnem]()
    if mnem == "movabs":
        return enc.mov_imm(ops[0], _parse_int(ops[1]), width=64)
    if mnem == "dec":
        return enc.dec(ops[0])
    if mnem == "push":
        return enc.push(ops[0])
    if mnem == "pop":
        return enc.pop(ops[0])
    if mnem == "lea":
        return enc.lea(ops[0], **_parse_mem(ops[1]))
    if mnem == "movzx":
        # "movzx dst, byte [..]"
        where = ops[1]
        if not where.startswith("byte "):
            raise AsmParseError(f"unsupported movzx form {text!r}")
        return enc.load(ops[0], size=1, **_parse_mem(where[5:]))
    if mnem == "mov":
        dst, src = ops
        if dst.startswith("byte "):
            return enc.store(src, size=1, **_parse_mem(dst[5:]))
        if dst.startswith("["):
            return enc.store(src, **_parse_mem(dst))
        if src.startswith("["):
            return enc.load(dst, **_parse_mem(src))
        if _is_reg(src):
            return enc.mov(dst, src)
        return enc.mov_imm(dst, _parse_int(src), width=32)
    if mnem in _ALU_OPS:
        dst, src = ops
        if _is_reg(src):
            return enc.alu(mnem, dst, src)
        return enc.alu_imm(mnem, dst, _parse_int(src))
    if mnem == "cmp":
        a, b = ops
        return enc.cmp_reg(a, b) if _is_reg(b) else enc.cmp_imm(a, _parse_int(b))
    if mnem == "test":
        return enc.test_reg(ops[0], ops[1])
    if mnem == "clflush":
        kwargs = _parse_mem(ops[0])
        if kwargs["index"] is not None:
            raise AsmParseError(f"clflush takes [base + disp], got {text!r}")
        return enc.clflush(kwargs["base"], disp=kwargs["disp"])
    if mnem == "rdtsc":
        # "rdtsc -> dst"
        arrow, _, dst = rest.partition(" ")
        if arrow != "->":
            raise AsmParseError(f"unsupported rdtsc form {text!r}")
        return enc.rdtsc(dst.strip())
    if mnem == "jmp":
        short, operand = _branch_operand(rest)
        if _is_reg(operand):
            return enc.jmp_ind(operand)
        return enc.jmp(target_of(operand), short=short, lcp=lcp)
    if mnem == "call":
        short, operand = _branch_operand(rest)
        if short:
            raise AsmParseError("call has no short form")
        if _is_reg(operand):
            return enc.call_ind(operand)
        return enc.call(target_of(operand))
    if mnem.startswith("j") and len(mnem) > 1:
        short, operand = _branch_operand(rest)
        return enc.jcc(mnem[1:], target_of(operand), short=short)
    raise AsmParseError(f"unrecognised instruction {text!r}")


def _branch_operand(rest: str) -> Tuple[bool, str]:
    if rest.startswith("short "):
        return True, rest[6:].strip()
    return False, rest


class _TargetFixer:
    """Turns numeric branch targets into synthetic labels.

    Direct branches whose target has no label render as ``jmp 0x...``;
    reassembly needs a label there, so one is invented and pinned to
    the address with ``label_at`` after all code is emitted.
    """

    def __init__(self) -> None:
        self.pins: Dict[str, int] = {}

    def __call__(self, operand: str) -> str:
        if not operand.startswith("0x") and not operand.startswith("-"):
            return operand  # a real label
        addr = _parse_int(operand)
        name = f"__target_{addr:x}"
        self.pins[name] = addr
        return name


def parse_listing(text: str, entry: Optional[str] = None) -> Program:
    """Reassemble a :func:`repro.isa.disasm.disassemble` listing.

    ``entry`` names the entry label; by default the first instruction's
    address is used.  Only code survives a listing (reserved data
    regions are not rendered), so the reassembled program is the same
    *code*, not the same memory image.
    """
    pending: List[str] = []
    rows: List[Tuple[int, str, int, Tuple[str, ...]]] = []
    for raw in text.splitlines():
        if not raw.strip():
            continue
        label = _LABEL_RE.match(raw)
        if label:
            pending.append(label.group(1))
            continue
        instr = _INSTR_RE.match(raw)
        if not instr:
            raise AsmParseError(f"unparseable listing line {raw!r}")
        addr = int(instr.group(1), 16)
        body = instr.group(2).split(";")[0].rstrip()
        body = _UOPS_RE.sub("", body)
        lcp = 0
        lcp_match = _LCP_RE.search(body)
        if lcp_match:
            lcp = int(lcp_match.group(1))
            body = _LCP_RE.sub("", body)
        rows.append((addr, body.strip(), lcp, tuple(pending)))
        pending = []
    if not rows:
        raise AsmParseError("empty listing")

    rows.sort(key=lambda row: row[0])
    target_of = _TargetFixer()
    asm = Assembler()
    entry_addr = rows[0][0]
    defined: Dict[str, int] = {}
    for addr, body, lcp, labels in rows:
        asm.org(addr)
        for name in labels:
            asm.label(name)
            defined[name] = addr
        asm.emit(_decode(body, lcp, target_of))
    for name, addr in target_of.pins.items():
        if name not in defined:
            asm.label_at(name, addr)
            defined[name] = addr
    if entry is None:
        # reuse an existing label at the entry address when there is
        # one, so re-disassembly renders the identical listing
        at_entry = [n for n, a in defined.items() if a == entry_addr]
        if at_entry:
            entry = at_entry[0]
        else:
            entry = "__listing_entry"
            asm.label_at(entry, entry_addr)
    return asm.assemble(entry=entry)


def signature(program: Program) -> List[Tuple]:
    """The byte-level identity of a program's code.

    Two programs with equal signatures occupy the same addresses with
    the same encodings and decode to the same micro-op structure --
    everything the front end, the placement model and the linter can
    observe.  Used by the round-trip tests as the equality relation.
    """
    out: List[Tuple] = []
    for instr in program.iter_instructions():
        uops = tuple(
            (
                uop.kind.name,
                uop.dst,
                uop.srcs,
                uop.imm,
                uop.alu_op,
                uop.cond,
                uop.base,
                uop.index,
                uop.scale,
                uop.disp,
                uop.mem_size,
                uop.slots,
            )
            for uop in instr.uops
        )
        out.append(
            (
                instr.addr,
                instr.length,
                instr.lcp_count,
                instr.branch_kind.name,
                instr.target,
                instr.msrom,
                instr.cacheable,
                uops,
            )
        )
    return out
