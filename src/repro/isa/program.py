"""An assembled program: code address space plus initial data image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.isa.instruction import MacroOp


@dataclass
class Program:
    """Immutable result of assembly.

    ``instructions`` maps each instruction's *start* address to its
    macro-op; the fetch unit walks this map.  ``data`` maps base
    addresses to initial byte payloads loaded into simulated memory
    before execution.  ``kernel_ranges`` marks address ranges that are
    only fetchable at privilege level 0 (used by the user/kernel
    channel and the privilege-partitioning mitigation).
    """

    instructions: Dict[int, MacroOp]
    labels: Dict[str, int]
    data: Dict[int, bytes] = field(default_factory=dict)
    entry: int = 0
    kernel_ranges: list = field(default_factory=list)  # list[(start, end)]

    def at(self, addr: int) -> Optional[MacroOp]:
        """Instruction starting at ``addr``, or ``None``."""
        return self.instructions.get(addr)

    def fetch(self, addr: int) -> MacroOp:
        """Instruction starting at ``addr``; raises on a wild fetch."""
        instr = self.instructions.get(addr)
        if instr is None:
            raise KeyError(
                f"no instruction at 0x{addr:x} "
                f"(wild fetch -- check branch targets and padding)"
            )
        return instr

    def has_code(self, addr: int) -> bool:
        """True if an instruction starts exactly at ``addr``."""
        return addr in self.instructions

    def addr_of(self, label: str) -> int:
        """Address of ``label``."""
        return self.labels[label]

    def mark_kernel(self, start_label: str, end_label: str) -> None:
        """Mark [start, end) as kernel-only code."""
        self.kernel_ranges.append((self.labels[start_label], self.labels[end_label]))

    def is_kernel_code(self, addr: int) -> bool:
        """True if ``addr`` lies in a kernel-only range."""
        return any(start <= addr < end for start, end in self.kernel_ranges)

    def iter_instructions(self) -> Iterator[MacroOp]:
        """All instructions in ascending address order."""
        for addr in sorted(self.instructions):
            yield self.instructions[addr]

    @property
    def code_bytes(self) -> int:
        """Total bytes of emitted code (excludes alignment gaps)."""
        return sum(i.length for i in self.instructions.values())
