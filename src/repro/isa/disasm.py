"""Program disassembler / pretty printer.

Renders assembled programs back into a NASM-flavoured listing --
useful for debugging generated exploit code and as the substrate the
gadget scanner (:mod:`repro.core.gadgets`) reports findings against.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.isa.instruction import BranchKind, MacroOp, UopKind
from repro.isa.program import Program


def _operand(uop) -> str:
    parts = []
    if uop.base:
        parts.append(uop.base)
    if uop.index:
        parts.append(f"{uop.index}*{uop.scale}")
    if uop.disp:
        parts.append(f"{uop.disp:#x}")
    return "[" + " + ".join(parts) + "]" if parts else ""


def format_instruction(
    instr: MacroOp, labels: Optional[Dict[int, str]] = None
) -> str:
    """One-line rendering of a macro-op.

    The rendering is *lossless*: every encoding distinction that
    changes byte length or micro-op structure survives in the text
    (``movabs`` vs ``mov``, ``dec`` vs ``sub``, ``short`` jump forms,
    ``push``/``pop`` vs their expanded micro-ops), so
    :mod:`repro.isa.asmparse` can reconstruct the identical program --
    the round-trip property the lint locations rely on.
    """
    labels = labels or {}
    mnem = instr.mnemonic
    uop = instr.uops[0]
    kind = uop.kind
    # mnemonic-keyed forms first: these share uop kinds with other
    # templates and would round-trip to the wrong byte length otherwise
    if mnem == "dec":
        text = f"dec {uop.dst}"
    elif mnem == "push":
        text = f"push {instr.uops[1].srcs[0]}"
    elif mnem == "pop":
        text = f"pop {uop.dst}"
    elif kind is UopKind.NOP:
        text = f"nop{instr.length}"
    elif kind is UopKind.MOV_IMM:
        verb = "movabs" if mnem == "mov_imm64" else "mov"
        text = f"{verb} {uop.dst}, {uop.imm:#x}"
    elif kind is UopKind.MOV:
        text = f"mov {uop.dst}, {uop.srcs[0]}"
    elif kind is UopKind.ALU:
        text = f"{uop.alu_op} {uop.dst}, {uop.srcs[1]}"
    elif kind is UopKind.ALU_IMM:
        text = f"{uop.alu_op} {uop.dst}, {uop.imm:#x}"
    elif kind is UopKind.CMP:
        rhs = uop.srcs[1] if len(uop.srcs) > 1 else f"{uop.imm:#x}"
        text = f"cmp {uop.srcs[0]}, {rhs}"
    elif kind is UopKind.TEST:
        rhs = uop.srcs[1] if len(uop.srcs) > 1 else f"{uop.imm:#x}"
        text = f"test {uop.srcs[0]}, {rhs}"
    elif kind is UopKind.LOAD:
        text = f"mov {uop.dst}, {_operand(uop)}"
        if uop.mem_size != 8:
            text = f"movzx {uop.dst}, byte {_operand(uop)}"
    elif kind is UopKind.STORE:
        where = _operand(uop)
        if uop.mem_size != 8:
            where = f"byte {where}"
        text = f"mov {where}, {uop.srcs[0]}"
    elif kind is UopKind.LEA:
        text = f"lea {uop.dst}, {_operand(uop)}"
    elif kind is UopKind.JCC:
        target = labels.get(uop.target, f"{uop.target:#x}")
        width = "short " if instr.length == 2 else ""
        text = f"j{uop.cond} {width}{target}"
    elif kind is UopKind.JMP:
        target = labels.get(uop.target, f"{uop.target:#x}")
        width = "short " if instr.length == 2 else ""
        text = f"jmp {width}{target}"
    elif kind is UopKind.CALL:
        target = labels.get(uop.target, f"{uop.target:#x}")
        text = f"call {target}"
    elif kind in (UopKind.JMP_IND, UopKind.CALL_IND):
        verb = "jmp" if kind is UopKind.JMP_IND else "call"
        text = f"{verb} {uop.srcs[0]}"
    elif kind is UopKind.CLFLUSH:
        text = f"clflush {_operand(uop)}"
    elif kind is UopKind.RDTSC:
        text = f"rdtsc -> {uop.dst}"
    else:
        text = mnem
    if instr.lcp_count:
        text += f" (lcp x{instr.lcp_count})"
    return text


def disassemble(
    program: Program,
    start: Optional[int] = None,
    end: Optional[int] = None,
) -> str:
    """Full listing with addresses, labels and micro-op counts."""
    addr_labels = {addr: name for name, addr in program.labels.items()}
    lines: List[str] = []
    for instr in program.iter_instructions():
        if start is not None and instr.addr < start:
            continue
        if end is not None and instr.addr >= end:
            continue
        if instr.addr in addr_labels:
            lines.append(f"{addr_labels[instr.addr]}:")
        text = format_instruction(instr, addr_labels)
        marks = []
        if instr.msrom:
            marks.append("msrom")
        if not instr.cacheable:
            marks.append("uncacheable")
        suffix = f"  ; {' '.join(marks)}" if marks else ""
        lines.append(
            f"  {instr.addr:#010x}: {text:<40s} "
            f"({instr.uop_count} uop{'s' if instr.uop_count != 1 else ''})"
            f"{suffix}"
        )
    return "\n".join(lines)
