"""Synthetic x86-like ISA substrate.

The micro-op cache only observes a handful of instruction properties:
byte length, alignment, number of decoded micro-ops, prefix composition
(length-changing prefixes), immediate width, and control-flow behaviour.
This package models exactly those properties, plus enough execution
semantics (registers, memory, flags, branches) for the paper's victim
functions and attack code to actually run on the simulated core.

Public API:

- :class:`~repro.isa.instruction.MacroOp` / :class:`~repro.isa.instruction.MicroOp`
  -- the decoded-instruction model.
- :mod:`repro.isa.encodings` -- constructor functions for every
  instruction template used by the paper's microbenchmarks and attacks
  (``nop``, ``jmp``, ``mov_imm``, ``load``, ``rdtsc``, ``lfence``, ...).
- :class:`~repro.isa.assembler.Assembler` -- two-pass assembler with
  labels and ``.align`` directives.
- :class:`~repro.isa.program.Program` -- an assembled address space.
"""

from repro.isa.instruction import (
    BranchKind,
    MacroOp,
    MicroOp,
    UopKind,
)
from repro.isa.assembler import Assembler, AssemblyError
from repro.isa.program import Program

__all__ = [
    "Assembler",
    "AssemblyError",
    "BranchKind",
    "MacroOp",
    "MicroOp",
    "Program",
    "UopKind",
]
