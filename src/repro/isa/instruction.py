"""Macro-op and micro-op models.

A *macro-op* is one x86 instruction as seen by the predecoder: a byte
length, optional length-changing prefixes, and a decode recipe that
yields one or more *micro-ops*.  Micro-ops carry the execution
semantics interpreted by :mod:`repro.backend.execute`.

Terminology follows the paper (Section II-A): simple macro-ops decode
through 1:1 decoders, complex ones through the 1:4 decoder, and
microcoded ones through the MSROM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class UopKind(enum.Enum):
    """Semantic class of a micro-op, interpreted by the backend."""

    NOP = "nop"
    MOV_IMM = "mov_imm"  # dst <- imm
    MOV = "mov"  # dst <- src
    ALU = "alu"  # dst <- op(src1, src2) ; may set flags
    LEA = "lea"  # dst <- base + index*scale + disp (no memory access)
    ALU_IMM = "alu_imm"  # dst <- op(src1, imm) ; may set flags
    CMP = "cmp"  # flags <- compare(src1, src2/imm)
    TEST = "test"  # flags <- src1 & src2/imm
    LOAD = "load"  # dst <- mem[base + index*scale + disp]
    STORE = "store"  # mem[base + index*scale + disp] <- src
    JCC = "jcc"  # conditional branch on flags
    JMP = "jmp"  # unconditional direct jump
    JMP_IND = "jmp_ind"  # unconditional indirect jump (target in reg)
    CALL = "call"  # direct call (pushes return address)
    CALL_IND = "call_ind"  # indirect call (target in reg)
    RET = "ret"  # return (pops return address)
    RDTSC = "rdtsc"  # dst <- current cycle count
    CLFLUSH = "clflush"  # flush [base+disp] from the data hierarchy
    LFENCE = "lfence"  # dispatch serialisation
    MFENCE = "mfence"  # memory fence (modelled like lfence)
    CPUID = "cpuid"  # fetch serialisation (microcoded)
    PAUSE = "pause"  # spin-wait hint; not cached in the uop cache
    SYSCALL = "syscall"  # user -> kernel transition
    SYSRET = "sysret"  # kernel -> user transition
    HALT = "halt"  # stop the simulated thread
    MSROM_FLOW = "msrom_flow"  # filler uop emitted by microcoded macros


#: Uop kinds that transfer control.
CONTROL_KINDS = frozenset(
    {
        UopKind.JCC,
        UopKind.JMP,
        UopKind.JMP_IND,
        UopKind.CALL,
        UopKind.CALL_IND,
        UopKind.RET,
        UopKind.SYSCALL,
        UopKind.SYSRET,
    }
)

#: Uop kinds that are *unconditional* control transfers.  The micro-op
#: cache placement rule "an unconditional branch is always the last
#: micro-op of the line" applies to these.
UNCONDITIONAL_KINDS = frozenset(
    {
        UopKind.JMP,
        UopKind.JMP_IND,
        UopKind.CALL,
        UopKind.CALL_IND,
        UopKind.RET,
        UopKind.SYSCALL,
        UopKind.SYSRET,
    }
)


class BranchKind(enum.Enum):
    """Control-flow class of a macro-op (``NONE`` for straight-line)."""

    NONE = "none"
    JCC = "jcc"
    JMP = "jmp"
    JMP_IND = "jmp_ind"
    CALL = "call"
    CALL_IND = "call_ind"
    RET = "ret"
    SYSCALL = "syscall"
    SYSRET = "sysret"


@dataclass
class MicroOp:
    """One decoded micro-op.

    Fields that matter to the micro-op *cache* (Section II-B):

    - ``slots``: number of micro-op cache slots consumed.  A micro-op
      carrying a 64-bit immediate consumes two slots; everything else
      consumes one.
    - ``kind``: used for the "unconditional jump terminates the line"
      and "at most two branches per line" placement rules.

    Fields that matter to the *backend*: ``dst``/``srcs`` for the
    scoreboard, ``imm``/addressing fields for semantics, ``alu_op`` and
    ``cond`` selecting the operation, ``latency`` for timing.
    """

    kind: UopKind
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    imm: Optional[int] = None
    alu_op: Optional[str] = None  # add, sub, and, or, xor, shl, shr, imul
    cond: Optional[str] = None  # z, nz, l, ge, b, ae, s, ns
    base: Optional[str] = None  # load/store address: [base + index*scale + disp]
    index: Optional[str] = None
    scale: int = 1
    disp: int = 0
    mem_size: int = 8  # load/store access width in bytes
    target: Optional[int] = None  # resolved direct branch/call target
    slots: int = 1
    latency: int = 1
    sets_flags: bool = False
    # Back-reference to the parent instruction, filled in at assembly.
    macro_addr: int = 0
    macro_len: int = 0
    from_msrom: bool = False

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer micro-op."""
        return self.kind in CONTROL_KINDS

    @property
    def is_unconditional(self) -> bool:
        """True for unconditional control transfers (jump/call/ret)."""
        return self.kind in UNCONDITIONAL_KINDS

    def reads(self) -> Tuple[str, ...]:
        """All architectural registers this micro-op reads."""
        regs = list(self.srcs)
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        if self.kind is UopKind.JCC:
            regs.append("flags")
        return tuple(regs)

    def writes(self) -> Tuple[str, ...]:
        """All architectural registers this micro-op writes."""
        regs = []
        if self.dst is not None:
            regs.append(self.dst)
        if self.sets_flags:
            regs.append("flags")
        return tuple(regs)


@dataclass
class MacroOp:
    """One x86 instruction as laid out in the binary.

    ``length`` and ``lcp_count`` drive the predecoder model; ``uops``
    drive the decoders and the micro-op cache; ``branch_kind`` and
    ``target`` drive next-fetch-address selection.
    """

    mnemonic: str
    length: int
    uops: Tuple[MicroOp, ...]
    lcp_count: int = 0
    branch_kind: BranchKind = BranchKind.NONE
    target: Optional[int] = None  # direct branch target (resolved)
    target_label: Optional[str] = None  # unresolved label, fixed at assembly
    msrom: bool = False  # decoded by the microcode sequencer ROM
    cacheable: bool = True  # PAUSE is observed not to enter the uop cache
    addr: int = 0  # filled in at assembly

    def __post_init__(self) -> None:
        if not 1 <= self.length <= 15:
            raise ValueError(
                f"{self.mnemonic}: x86 instruction length must be 1..15 bytes, "
                f"got {self.length}"
            )
        if not self.uops:
            raise ValueError(f"{self.mnemonic}: a macro-op must decode to >= 1 uop")

    @property
    def uop_count(self) -> int:
        """Number of decoded micro-ops."""
        return len(self.uops)

    @property
    def slot_count(self) -> int:
        """Micro-op cache slots consumed (64-bit immediates take two)."""
        return sum(u.slots for u in self.uops)

    @property
    def is_control(self) -> bool:
        """True if this instruction may redirect fetch."""
        return self.branch_kind is not BranchKind.NONE

    @property
    def end(self) -> int:
        """Address of the first byte after this instruction."""
        return self.addr + self.length

    def bind(self, addr: int) -> None:
        """Record the instruction address and stamp it into the uops."""
        self.addr = addr
        for uop in self.uops:
            uop.macro_addr = addr
            uop.macro_len = self.length


def region_of(addr: int, region_bytes: int = 32) -> int:
    """Aligned code-region base address containing ``addr``.

    The Skylake micro-op cache tracks 32-byte regions (Section II-B);
    the region base is simply the address with the low 5 bits cleared.
    """
    return addr & ~(region_bytes - 1)
