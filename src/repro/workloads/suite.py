"""The workload builders and the suite runner."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.cpu.counters import PerfCounters
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.isa.program import Program


@dataclass
class WorkloadResult:
    """Summary metrics of one workload run."""

    name: str
    cycles: int
    counters: PerfCounters

    @property
    def ipc(self) -> float:
        """Retired micro-ops per cycle."""
        return self.counters.retired_uops / self.cycles if self.cycles else 0.0

    @property
    def dsb_hit_rate(self) -> float:
        """Region-granular micro-op cache hit rate."""
        lookups = self.counters.dsb_hits + self.counters.dsb_misses
        return self.counters.dsb_hits / lookups if lookups else 0.0

    @property
    def dsb_uop_fraction(self) -> float:
        """Fraction of delivered micro-ops streamed from the DSB."""
        total = self.counters.uops_total
        return self.counters.uops_dsb / total if total else 0.0

    @property
    def mispredict_rate(self) -> float:
        """Mispredictions per branch."""
        if not self.counters.branches:
            return 0.0
        return self.counters.branch_mispredicts / self.counters.branches


# ----------------------------------------------------------------------
# builders


def hot_loop(scale: int = 1) -> Program:
    """A tight loop kernel: the paper's "hotspot" case (~100% DSB)."""
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.mov_imm("r1", 200 * scale))
    asm.emit(enc.mov_imm("r2", 0))
    asm.align(32)
    asm.label("top")
    asm.emit(enc.alu_imm("add", "r2", 3))
    asm.emit(enc.alu_imm("xor", "r2", 0x55))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "top"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def matvec(scale: int = 1) -> Program:
    """Dense inner-product loops: hot code, streaming data."""
    n = 64
    asm = Assembler()
    rng = random.Random(11)
    vec = bytes(rng.randrange(256) for _ in range(n * 8))
    asm.data("mat", vec * 4)
    asm.data("vec", vec)
    asm.label("main")
    asm.emit(enc.mov_imm("r7", 4 * scale))  # rows x repeats
    asm.label("row")
    asm.emit(enc.mov_imm("r1", n))
    asm.emit(enc.mov_imm("r2", asm.resolve("mat"), width=64))
    asm.emit(enc.mov_imm("r3", asm.resolve("vec"), width=64))
    asm.emit(enc.mov_imm("r4", 0))
    asm.align(32)
    asm.label("inner")
    asm.emit(enc.load("r5", "r2"))
    asm.emit(enc.load("r6", "r3"))
    asm.emit(enc.alu("imul", "r5", "r6"))
    asm.emit(enc.alu("add", "r4", "r5"))
    asm.emit(enc.alu_imm("add", "r2", 8))
    asm.emit(enc.alu_imm("add", "r3", 8))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "inner"))
    asm.emit(enc.dec("r7"))
    asm.emit(enc.jcc("nz", "row"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def hash_loop(scale: int = 1) -> Program:
    """FNV-style byte hash over a buffer."""
    size = 256
    asm = Assembler()
    rng = random.Random(5)
    asm.data("buf", bytes(rng.randrange(256) for _ in range(size)))
    asm.label("main")
    asm.emit(enc.mov_imm("r7", 2 * scale))
    asm.label("again")
    asm.emit(enc.mov_imm("r1", size))
    asm.emit(enc.mov_imm("r2", asm.resolve("buf"), width=64))
    asm.emit(enc.mov_imm("r3", 0xCBF29CE484222325, width=64))
    asm.align(32)
    asm.label("step")
    asm.emit(enc.load("r4", "r2", size=1))
    asm.emit(enc.alu("xor", "r3", "r4"))
    asm.emit(enc.alu_imm("imul", "r3", 0x1B3))
    asm.emit(enc.alu_imm("add", "r2", 1))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "step"))
    asm.emit(enc.dec("r7"))
    asm.emit(enc.jcc("nz", "again"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def interpreter(scale: int = 1, n_handlers: int = 16) -> Program:
    """Bytecode-interpreter dispatch loop: indirect jumps through a
    handler table -- wider code footprint, indirect-predictor load."""
    asm = Assembler()
    rng = random.Random(17)
    bytecode = bytes(rng.randrange(n_handlers) for _ in range(128))
    asm.data("bytecode", bytecode)

    # handlers first so the table below can resolve their addresses
    for h in range(n_handlers):
        asm.align(64)
        asm.label(f"op_{h}")
        asm.emit(enc.alu_imm("add", "r4", h + 1))
        asm.emit(enc.alu_imm("xor", "r4", h))
        if h % 3 == 0:
            asm.emit(enc.alu_imm("imul", "r4", 3))
        asm.emit(enc.jmp("dispatch"))
    table = bytearray()
    for h in range(n_handlers):
        table += asm.resolve(f"op_{h}").to_bytes(8, "little")
    asm.data("handler_table", bytes(table))

    asm.align(64)
    asm.label("main")
    asm.emit(enc.mov_imm("r7", scale))
    asm.label("program_start")
    asm.emit(enc.mov_imm("r1", len(bytecode)))  # remaining ops
    asm.emit(enc.mov_imm("r2", asm.resolve("bytecode"), width=64))
    asm.emit(enc.mov_imm("r6", asm.resolve("handler_table"), width=64))
    asm.label("dispatch")
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("z", "program_end"))
    asm.emit(enc.load("r3", "r2", size=1))
    asm.emit(enc.alu_imm("add", "r2", 1))
    asm.emit(enc.alu_imm("shl", "r3", 3))
    asm.emit(enc.load("r5", "r6", index="r3"))
    asm.emit(enc.jmp_ind("r5"))
    asm.label("program_end")
    asm.emit(enc.dec("r7"))
    asm.emit(enc.jcc("nz", "program_start"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def syscall_heavy(scale: int = 1) -> Program:
    """A loop that calls into a trivial kernel routine -- the workload
    most sensitive to flush-at-domain-crossing."""
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.mov_imm("r1", 40 * scale))
    asm.align(32)
    asm.label("top")
    asm.emit(enc.alu_imm("add", "r2", 1))
    asm.emit(enc.syscall())
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "top"))
    asm.emit(enc.halt())
    asm.org(0xC0_0000)
    asm.label("kernel_entry")
    asm.emit(enc.alu_imm("add", "r3", 1))
    asm.emit(enc.sysret())
    asm.label("kernel_end")
    prog = asm.assemble(entry="main")
    prog.kernel_ranges.append((0xC0_0000, 0xC1_0000))
    return prog


def pointer_chase(scale: int = 1) -> Program:
    """Latency-bound linked-list walk: the DSB barely matters."""
    length = 64
    stride = 4096
    asm = Assembler()
    base = asm.reserve("chain", length * stride, align=4096)
    chain = bytearray()
    for i in range(length):
        nxt = base + ((i + 1) % length) * stride
        chain += nxt.to_bytes(8, "little") + bytes(stride - 8)
    asm.patch_data("chain", bytes(chain))
    asm.label("main")
    asm.emit(enc.mov_imm("r1", 2 * length * scale))
    asm.emit(enc.mov_imm("r3", asm.resolve("chain"), width=64))
    asm.align(32)
    asm.label("top")
    asm.emit(enc.load("r3", "r3"))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "top"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def branchy(scale: int = 1) -> Program:
    """Data-dependent branches over pseudo-random bytes: mispredict-
    heavy, exercising squash recovery on benign code."""
    size = 192
    asm = Assembler()
    rng = random.Random(23)
    asm.data("noise", bytes(rng.randrange(256) for _ in range(size)))
    asm.label("main")
    asm.emit(enc.mov_imm("r7", 2 * scale))
    asm.label("again")
    asm.emit(enc.mov_imm("r1", size))
    asm.emit(enc.mov_imm("r2", asm.resolve("noise"), width=64))
    asm.align(32)
    asm.label("step")
    asm.emit(enc.load("r4", "r2", size=1))
    asm.emit(enc.alu_imm("and", "r4", 1))
    asm.emit(enc.test_reg("r4", "r4"))
    asm.emit(enc.jcc("z", "even"))
    asm.emit(enc.alu_imm("add", "r5", 3))
    asm.emit(enc.jmp("next"))
    asm.label("even")
    asm.emit(enc.alu_imm("sub", "r5", 1))
    asm.label("next")
    asm.emit(enc.alu_imm("add", "r2", 1))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "step"))
    asm.emit(enc.dec("r7"))
    asm.emit(enc.jcc("nz", "again"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def large_code(scale: int = 1) -> Program:
    """A code footprint larger than the micro-op cache, walked
    repeatedly: the capacity-miss regime."""
    regions = 320  # > 256 lines
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.mov_imm("r1", 2 * scale))
    asm.align(32)
    asm.label("top")
    for _ in range(regions):
        asm.align(32)
        asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "top"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


#: Name -> builder registry.
WORKLOADS: Dict[str, Callable[[int], Program]] = {
    "hot_loop": hot_loop,
    "matvec": matvec,
    "hash_loop": hash_loop,
    "interpreter": interpreter,
    "syscall_heavy": syscall_heavy,
    "pointer_chase": pointer_chase,
    "branchy": branchy,
    "large_code": large_code,
}


def build_workload(name: str, scale: int = 1) -> Program:
    """Instantiate one workload by name."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return builder(scale)


def run_workload(
    name: str,
    config: Optional[CPUConfig] = None,
    scale: int = 1,
    warmup: bool = True,
) -> WorkloadResult:
    """Run one workload to completion and summarise its counters.

    With ``warmup`` the program runs once before measurement so the
    result reflects steady state (warm micro-op cache and predictors).
    """
    config = config or CPUConfig.skylake()
    core = Core(config, build_workload(name, scale))
    if warmup:
        core.call("main")
    delta = core.call("main")
    return WorkloadResult(name=name, cycles=core.cycles(), counters=delta)


def run_suite(
    config: Optional[CPUConfig] = None,
    scale: int = 1,
    names: Optional[List[str]] = None,
) -> Dict[str, WorkloadResult]:
    """Run every workload (or a subset); returns results by name."""
    return {
        name: run_workload(name, config, scale)
        for name in (names or sorted(WORKLOADS))
    }
