"""Benign workload suite.

Synthetic but realistically shaped programs used three ways:

- to sanity-check the front-end model against the micro-op cache's
  documented behaviour (the paper cites ~80% average hit rates and
  ~100% for tight loop kernels when the structure was introduced);
- to price the Section VIII mitigations on code that is *not* an
  attack (flush-at-crossing hurts syscall-heavy work most);
- to give the counter-based detector a benign trace with honest
  variance for ROC evaluation.
"""

from repro.workloads.suite import (
    WorkloadResult,
    WORKLOADS,
    build_workload,
    run_suite,
    run_workload,
)

__all__ = [
    "WORKLOADS",
    "WorkloadResult",
    "build_workload",
    "run_suite",
    "run_workload",
]
