"""Key-space routing for the worker fleet: rendezvous hashing.

The coordinator must map every job key (a schema-versioned SHA-256
content hash, see :meth:`repro.harness.job.Job.key`) to one worker so
that identical submissions land on the same node -- worker-side
coalescing and the worker's local cache then do the rest.  Rendezvous
(highest-random-weight) hashing gives exactly the property a fleet
with churn needs: for each key, score every live worker with
``sha256(worker_id || key)`` and pick the maximum.  Adding or
evicting one worker moves only the keys that worker owned (~1/N of
the space); every other key keeps its assignment, so a mid-sweep
eviction reroutes only the dead node's share.

:class:`WorkerNode` carries the liveness bookkeeping the coordinator's
health loop maintains: consecutive probe failures, jobs forwarded,
and an ``alive`` flag flipped by eviction.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional


class WorkerNode:
    """One registered worker endpoint plus its health bookkeeping."""

    __slots__ = ("host", "port", "alive", "failures", "forwarded",
                 "registered_at_mono", "last_seen_mono")

    def __init__(self, host: str, port: int,
                 now_mono: float = 0.0):
        self.host = host
        self.port = int(port)
        self.alive = True
        self.failures = 0          # consecutive failed health probes
        self.forwarded = 0         # jobs routed here (lifetime)
        self.registered_at_mono = now_mono
        self.last_seen_mono = now_mono

    @property
    def node_id(self) -> str:
        return f"{self.host}:{self.port}"

    def to_json(self) -> Dict[str, object]:
        return {
            "id": self.node_id,
            "host": self.host,
            "port": self.port,
            "alive": self.alive,
            "failures": self.failures,
            "forwarded": self.forwarded,
        }


class RendezvousRouter:
    """Highest-random-weight assignment of job keys to live workers."""

    def __init__(self) -> None:
        self._nodes: Dict[str, WorkerNode] = {}

    # ------------------------------------------------------------------
    # membership

    def add(self, host: str, port: int, now_mono: float = 0.0) -> WorkerNode:
        """Register (or re-register) a worker; idempotent upsert.

        A re-registration resurrects an evicted node -- the worker
        restarting and phoning home again is the recovery path."""
        node_id = f"{host}:{int(port)}"
        node = self._nodes.get(node_id)
        if node is None:
            node = WorkerNode(host, int(port), now_mono)
            self._nodes[node_id] = node
        else:
            node.alive = True
            node.failures = 0
            node.last_seen_mono = now_mono
        return node

    def evict(self, node_id: str) -> bool:
        """Mark a worker dead; its key share reroutes on the next
        :meth:`route` call.  ``False`` when unknown/already dead."""
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            return False
        node.alive = False
        return True

    def get(self, node_id: str) -> Optional[WorkerNode]:
        return self._nodes.get(node_id)

    @property
    def nodes(self) -> List[WorkerNode]:
        """Every known worker, dead ones included (stable order)."""
        return [self._nodes[k] for k in sorted(self._nodes)]

    @property
    def live_nodes(self) -> List[WorkerNode]:
        return [n for n in self.nodes if n.alive]

    def __len__(self) -> int:
        return len(self.live_nodes)

    # ------------------------------------------------------------------
    # routing

    @staticmethod
    def _score(node_id: str, key: str) -> int:
        digest = hashlib.sha256(f"{node_id}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def route(self, key: str) -> Optional[WorkerNode]:
        """The live worker owning ``key``, or ``None`` with no fleet."""
        best: Optional[WorkerNode] = None
        best_score = -1
        for node in self._nodes.values():
            if not node.alive:
                continue
            score = self._score(node.node_id, key)
            if score > best_score:
                best, best_score = node, score
        return best

    def ranked(self, key: str) -> List[WorkerNode]:
        """Live workers by descending preference for ``key`` --
        position 0 is :meth:`route`'s answer, the rest are the
        failover order a re-dispatch walks after an eviction."""
        return sorted(
            (n for n in self._nodes.values() if n.alive),
            key=lambda n: self._score(n.node_id, key),
            reverse=True,
        )
