"""Shared HTTP/1.1 plumbing for the serving layer.

Both the single-node :class:`~repro.serve.server.ExperimentService`
and the cluster :class:`~repro.serve.cluster.CoordinatorService` speak
the same deliberately minimal dialect -- hand-rolled HTTP/1.1 over
``asyncio`` streams, one request per connection (``Connection:
close``), small JSON bodies -- so the framing lives here once:

- :func:`read_request` parses a request head + body off a stream.
- :func:`respond` writes a JSON (or raw-bytes) response.
- :func:`http_fetch` is the matching *async client*: the coordinator
  forwards jobs to workers and probes ``/healthz`` with it, and a
  worker registers itself with its coordinator through it, all
  without blocking the event loop (stdlib ``http.client`` is
  synchronous and would stall every other connection).

The 8 MiB body cap and 30 s read timeouts mirror the original server
limits; they are generous for spec documents and result records and
small enough to shrug off stuck peers.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

#: Largest request/response body either side will read.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Per-read timeout for request heads and bodies.
READ_TIMEOUT_S = 30.0

REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
           404: "Not Found", 405: "Method Not Allowed",
           409: "Conflict", 429: "Too Many Requests",
           502: "Bad Gateway", 503: "Service Unavailable"}


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request; ``(METHOD, path, body)`` or ``None`` on a
    malformed, oversized or closed stream."""
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=READ_TIMEOUT_S)
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        return None
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        return None
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                return None
    body = b""
    if length:
        if length > MAX_BODY_BYTES:
            return None
        body = await asyncio.wait_for(
            reader.readexactly(length), timeout=READ_TIMEOUT_S)
    return method.upper(), path, body


async def respond(writer: asyncio.StreamWriter, status: int,
                  payload: Any, *, content_type: str = "application/json",
                  extra_headers: Tuple[Tuple[str, str], ...] = ()) -> None:
    """Write one full response (JSON for dict/list, raw otherwise)."""
    if isinstance(payload, (dict, list)):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    elif isinstance(payload, str):
        body = payload.encode()
    else:
        body = payload
    headers = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    headers.extend(f"{name}: {value}" for name, value in extra_headers)
    writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
    await writer.drain()


class FetchError(OSError):
    """The peer was unreachable or answered garbage (transport-level,
    as opposed to an HTTP error status, which :func:`http_fetch`
    returns normally)."""


async def http_fetch(host: str, port: int, method: str, path: str,
                     body: Optional[Dict[str, Any]] = None,
                     timeout: float = 30.0) -> Tuple[int, Dict[str, Any]]:
    """One async HTTP exchange; returns ``(status, json_doc)``.

    Raises :class:`FetchError` when the peer cannot be reached or the
    response does not frame -- callers treat that as "worker down",
    distinct from an HTTP error document.
    """
    payload = b"" if body is None else json.dumps(body).encode()
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Content-Type: application/json\r\n"
            f"Connection: close\r\n\r\n").encode()
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout)
    except (OSError, asyncio.TimeoutError) as exc:
        raise FetchError(f"cannot reach {host}:{port}: {exc}") from None
    try:
        writer.write(head + payload)
        await asyncio.wait_for(writer.drain(), timeout=timeout)
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    except (OSError, asyncio.TimeoutError) as exc:
        raise FetchError(f"request to {host}:{port} failed: {exc}") from None
    finally:
        try:
            writer.close()
        except OSError:
            pass
    sep = raw.find(b"\r\n\r\n")
    if sep < 0:
        raise FetchError(f"unframed response from {host}:{port}")
    status_line = raw[:sep].split(b"\r\n", 1)[0].decode("latin-1")
    try:
        status = int(status_line.split(" ", 2)[1])
    except (IndexError, ValueError):
        raise FetchError(
            f"bad status line from {host}:{port}: {status_line!r}") from None
    body_bytes = raw[sep + 4:]
    try:
        doc = json.loads(body_bytes.decode("utf-8") or "null")
    except (UnicodeDecodeError, ValueError):
        doc = {"error": body_bytes[:200].decode("utf-8", "replace")}
    if not isinstance(doc, dict):
        doc = {"value": doc}
    return status, doc
