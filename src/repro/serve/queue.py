"""Bounded priority queue with explicit backpressure.

The admission queue between the HTTP front end and the worker tier.
Design choices, all deliberate:

- **Bounded.**  A full queue raises :class:`QueueFull` at ``put`` time
  and the server answers ``429 Retry-After`` -- clients get an honest
  signal instead of unbounded buffering and silent latency growth.
- **Priority + FIFO.**  Higher ``priority`` pops first; within one
  priority, submission order is preserved via a monotonic sequence
  number (no starvation reordering surprises between equal peers).
- **Closable.**  ``close()`` starts the drain: queued items continue
  to pop until the queue is empty, after which :meth:`get` raises
  :class:`QueueClosed` and the runner loops exit.  Accepted work is
  finished; only new admissions are refused (by the server, which
  checks ``closed`` before ``put``).
- **Removable.**  Cancellation of a still-queued item is a lazy
  tombstone: :meth:`remove` marks the entry and :meth:`get` skips it,
  so cancel is O(1) and the heap invariant is untouched.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Any, List, Optional, Tuple


class QueueFull(Exception):
    """Admission refused: the queue is at capacity.

    ``retry_after`` is the server's estimate (in seconds) of when a
    retry is likely to be admitted; it becomes the HTTP
    ``Retry-After`` header.
    """

    def __init__(self, capacity: int, retry_after: float = 1.0):
        super().__init__(f"queue full ({capacity} entries)")
        self.capacity = capacity
        self.retry_after = retry_after


class QueueClosed(Exception):
    """The queue is closed and fully drained."""


class BoundedPriorityQueue:
    """asyncio-native bounded priority queue (single event loop)."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._heap: List[Tuple[int, int, List[Any]]] = []
        self._seq = itertools.count()
        self._size = 0  # live (non-tombstoned) entries
        self._closed = False
        self._not_empty: Optional[asyncio.Condition] = None

    def _cond(self) -> asyncio.Condition:
        # Created lazily so the queue can be constructed off-loop.
        if self._not_empty is None:
            self._not_empty = asyncio.Condition()
        return self._not_empty

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    def put_nowait(self, priority: int, item: Any,
                   retry_after: float = 1.0) -> None:
        """Admit ``item`` or raise :class:`QueueFull`/:class:`QueueClosed`."""
        if self._closed:
            raise QueueClosed("queue is closed to new work")
        if self._size >= self.capacity:
            raise QueueFull(self.capacity, retry_after)
        # [item] is a 1-slot box: remove() empties it to tombstone.
        heapq.heappush(self._heap, (-int(priority), next(self._seq), [item]))
        self._size += 1

    async def notify(self) -> None:
        """Wake one waiting consumer (call after ``put_nowait``)."""
        cond = self._cond()
        async with cond:
            cond.notify()

    async def get(self) -> Any:
        """Pop the highest-priority live entry; raises
        :class:`QueueClosed` once closed *and* empty."""
        cond = self._cond()
        while True:
            async with cond:
                while not self._heap and not self._closed:
                    await cond.wait()
                while self._heap:
                    _, _, box = heapq.heappop(self._heap)
                    if box:  # skip tombstones
                        self._size -= 1
                        return box[0]
                if self._closed:
                    raise QueueClosed("queue drained")

    def remove(self, item: Any) -> bool:
        """Tombstone a queued ``item``; ``False`` when not queued
        (already popped or never admitted)."""
        for _, _, box in self._heap:
            if box and box[0] is item:
                box.clear()
                self._size -= 1
                return True
        return False

    async def close(self) -> None:
        """Refuse new admissions; queued work keeps draining."""
        self._closed = True
        cond = self._cond()
        async with cond:
            cond.notify_all()
