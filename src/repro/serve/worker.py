"""The worker tier: spec execution in a persistent process pool.

Each worker process is long-lived and executes specs through
:meth:`repro.serve.spec.ExperimentSpec.execute`, i.e. through the same
:func:`repro.harness.executor.run_jobs` path as the batch CLI -- with
the harness's SIGALRM deadlines (legal: specs run on the worker's main
thread) and bounded retries, against a shared on-disk
:class:`~repro.harness.cache.ResultCache`.  Long-lived matters twice:
the experiment registry and decode machinery import once per worker,
and the :class:`~repro.session.pool.SessionPool` keeps attack sessions
assembled across trace requests.

Graceful degradation mirrors the harness: when a process pool cannot
be created (or breaks mid-run) the tier falls back to a thread pool
and keeps serving.  Thread mode trades in-worker SIGALRM timeout
enforcement for availability (the server-side ceiling still bounds
observed latency); ``/healthz`` reports the active mode.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple


def _worker_probe() -> int:
    """Trivial pool liveness check (import cost is paid here, once)."""
    return os.getpid()


def _worker_entry(
    payload: Tuple[Dict[str, Any], Optional[str], Optional[str]],
) -> Dict[str, Any]:
    """Top-level (hence picklable) worker entry: revalidate the spec
    document, execute it, flatten any exception to a string record so
    nothing unpicklable crosses back to the server process."""
    spec_doc, cache_root, shared_root = payload
    from repro.harness.cache import ResultCache, TieredResultCache
    from repro.serve.spec import ExperimentSpec

    try:
        spec = ExperimentSpec.from_json(spec_doc)
        if shared_root is not None:
            cache: Any = TieredResultCache.from_roots(cache_root, shared_root)
        elif cache_root is not None:
            cache = ResultCache(cache_root)
        else:
            cache = None
        result = spec.execute(cache)
        return {"ok": True, "result": result, "pid": os.getpid()}
    except Exception as exc:  # noqa: BLE001 -- spec code is arbitrary
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "pid": os.getpid(),
        }


class WorkerTier:
    """A bounded pool of spec executors with process->thread fallback."""

    def __init__(self, workers: int = 2,
                 cache_root: Optional[os.PathLike] = None,
                 mode: str = "process",
                 shared_root: Optional[os.PathLike] = None):
        if mode not in ("process", "thread"):
            raise ValueError(f"mode must be process|thread, got {mode!r}")
        self.workers = max(1, int(workers))
        self.cache_root = None if cache_root is None else str(cache_root)
        self.shared_root = None if shared_root is None else str(shared_root)
        self.mode = mode
        self.degraded = False
        self._pool: Optional[Any] = None

    def start(self) -> "WorkerTier":
        """Build the pool; a failed process-pool probe degrades to
        threads instead of failing the whole service."""
        if self.mode == "process":
            try:
                pool = ProcessPoolExecutor(max_workers=self.workers)
                pool.submit(_worker_probe).result(timeout=120)
                self._pool = pool
                return self
            except Exception:
                self.degrade()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        return self

    def degrade(self) -> bool:
        """Switch to thread mode (idempotent); ``True`` when a switch
        actually happened."""
        if self.mode == "thread":
            return False
        old = self._pool
        self.mode = "thread"
        self.degraded = True
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        return True

    def submit(self, spec) -> Future:
        """Dispatch one spec; returns the worker's record future."""
        if self._pool is None:
            self.start()
        payload = (spec.as_dict(), self.cache_root, self.shared_root)
        try:
            return self._pool.submit(_worker_entry, payload)
        except Exception:
            # A broken process pool raises at submit time; threads are
            # the fallback of last resort.
            if self.degrade():
                return self._pool.submit(_worker_entry, payload)
            raise

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=not wait)
            self._pool = None
