"""Service metrics on the observe event bus.

The serving layer publishes its job lifecycle onto a
:class:`repro.observe.events.EventBus` carrying a service vocabulary
(:data:`SERVE_KINDS`) instead of the simulator one -- the same
machinery PR 3 built for micro-op cache fills now carries queue
admissions.  :class:`ServiceMetrics` is the built-in subscriber that
folds those events into the ``/metrics`` document: monotonic counters,
coalescing/cache hit-rates and per-spec-kind latency histograms.
Tests (or an operator shell) can subscribe their own callables to the
same bus.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.observe.events import Event, EventBus

#: Service event kinds (one per job-lifecycle edge).
JOB_SUBMITTED = "job_submitted"    # admitted to the queue
JOB_COALESCED = "job_coalesced"    # attached to an in-flight twin
JOB_CACHE_HIT = "job_cache_hit"    # answered from the result cache
JOB_REJECTED = "job_rejected"      # backpressure (429) or draining (503)
JOB_STARTED = "job_started"        # dispatched to the worker tier
JOB_FINISHED = "job_finished"      # terminal: done/failed/timeout/cancelled
JOB_FORWARDED = "job_forwarded"    # arrived via a cluster coordinator

SERVE_KINDS: Tuple[str, ...] = (
    JOB_SUBMITTED,
    JOB_COALESCED,
    JOB_CACHE_HIT,
    JOB_REJECTED,
    JOB_STARTED,
    JOB_FINISHED,
    JOB_FORWARDED,
)

#: Histogram bucket upper bounds, milliseconds.
LATENCY_BOUNDS_MS: Tuple[int, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000,
    120000,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with conservative percentiles.

    Buckets are cheap, mergeable and JSON-friendly; percentile reads
    return the *upper bound* of the bucket holding the requested rank
    (never under-reports).  Exact min/max/mean ride along.
    """

    __slots__ = ("counts", "n", "total_ms", "min_ms", "max_ms")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (len(LATENCY_BOUNDS_MS) + 1)
        self.n = 0
        self.total_ms = 0.0
        self.min_ms: Optional[float] = None
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = max(0.0, seconds * 1000.0)
        for i, bound in enumerate(LATENCY_BOUNDS_MS):
            if ms <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.n += 1
        self.total_ms += ms
        self.max_ms = max(self.max_ms, ms)
        self.min_ms = ms if self.min_ms is None else min(self.min_ms, ms)

    def percentile(self, p: float) -> Optional[float]:
        """Upper-bound estimate of the ``p`` quantile (0 < p <= 1)."""
        if self.n == 0:
            return None
        rank = max(1, int(p * self.n + 0.9999999))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if i < len(LATENCY_BOUNDS_MS):
                    return float(min(LATENCY_BOUNDS_MS[i], self.max_ms))
                return self.max_ms
        return self.max_ms

    def to_json(self) -> Dict[str, object]:
        return {
            "count": self.n,
            "mean_ms": round(self.total_ms / self.n, 3) if self.n else None,
            "min_ms": None if self.min_ms is None else round(self.min_ms, 3),
            "max_ms": round(self.max_ms, 3) if self.n else None,
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
            "buckets": {
                **{f"le_{b}": c
                   for b, c in zip(LATENCY_BOUNDS_MS, self.counts)},
                "inf": self.counts[-1],
            },
        }


class ServiceMetrics:
    """The ``/metrics`` aggregator: a bus, counters, histograms."""

    def __init__(self) -> None:
        self.bus = EventBus(kinds=SERVE_KINDS)
        self.counters: Dict[str, int] = {
            "submitted": 0,    # accepted: queued for execution
            "coalesced": 0,    # in-flight twin answered the submission
            "cache_hits": 0,   # result cache answered the submission
            "rejected": 0,     # 429/503 refusals
            "executed": 0,     # dispatched to a worker (the coalescing
                               # proof: N twin submissions -> 1 here)
            "completed": 0,
            "failed": 0,
            "timeouts": 0,
            "cancelled": 0,
            "forwarded": 0,    # submissions relayed by a coordinator
        }
        self.latency: Dict[str, LatencyHistogram] = {}
        self.started_monotonic = time.monotonic()
        self.bus.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # bus-facing emit helpers (the server calls these)

    def _emit(self, kind: str, **data) -> None:
        self.bus.emit(kind, 0, -1, **data)

    def submitted(self, spec_kind: str, key: str) -> None:
        self._emit(JOB_SUBMITTED, spec_kind=spec_kind, key=key)

    def coalesced(self, spec_kind: str, key: str) -> None:
        self._emit(JOB_COALESCED, spec_kind=spec_kind, key=key)

    def cache_hit(self, spec_kind: str, key: str) -> None:
        self._emit(JOB_CACHE_HIT, spec_kind=spec_kind, key=key)

    def rejected(self, reason: str) -> None:
        self._emit(JOB_REJECTED, reason=reason)

    def started(self, spec_kind: str, key: str) -> None:
        self._emit(JOB_STARTED, spec_kind=spec_kind, key=key)

    def forwarded(self, spec_kind: str, key: str) -> None:
        self._emit(JOB_FORWARDED, spec_kind=spec_kind, key=key)

    def finished(self, spec_kind: str, key: str, status: str,
                 seconds: float) -> None:
        self._emit(JOB_FINISHED, spec_kind=spec_kind, key=key,
                   status=status, seconds=seconds)

    # ------------------------------------------------------------------
    # built-in subscriber

    _STATUS_COUNTER = {
        "done": "completed",
        "failed": "failed",
        "timeout": "timeouts",
        "cancelled": "cancelled",
    }

    def _on_event(self, event: Event) -> None:
        kind = event.kind
        if kind == JOB_SUBMITTED:
            self.counters["submitted"] += 1
        elif kind == JOB_COALESCED:
            self.counters["coalesced"] += 1
        elif kind == JOB_CACHE_HIT:
            self.counters["cache_hits"] += 1
        elif kind == JOB_REJECTED:
            self.counters["rejected"] += 1
        elif kind == JOB_STARTED:
            self.counters["executed"] += 1
        elif kind == JOB_FORWARDED:
            self.counters["forwarded"] += 1
        elif kind == JOB_FINISHED:
            status = str(event.get("status"))
            counter = self._STATUS_COUNTER.get(status)
            if counter is not None:
                self.counters[counter] += 1
            label = str(event.get("spec_kind"))
            hist = self.latency.get(label)
            if hist is None:
                hist = self.latency[label] = LatencyHistogram()
            hist.observe(float(event.get("seconds", 0.0)))

    # ------------------------------------------------------------------
    # rendering

    def to_json(self, **extra) -> Dict[str, object]:
        """The ``/metrics`` document (caller merges queue/tier state)."""
        answered = (self.counters["submitted"] + self.counters["coalesced"]
                    + self.counters["cache_hits"])
        doc: Dict[str, object] = {
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "counters": dict(self.counters),
            "rates": {
                "coalesce_hit_rate": (
                    self.counters["coalesced"] / answered if answered else 0.0
                ),
                "cache_hit_rate": (
                    self.counters["cache_hits"] / answered if answered else 0.0
                ),
            },
            "latency": {
                kind: hist.to_json() for kind, hist in self.latency.items()
            },
        }
        doc.update(extra)
        return doc
