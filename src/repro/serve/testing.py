"""Test/benchmark support: run the service on a background thread.

:class:`ServerThread` owns a private event loop on a daemon thread,
boots an :class:`~repro.serve.server.ExperimentService` on an
OS-assigned port (``port=0``) and tears it down through the same
graceful-drain path production uses -- so every test of the serving
layer also exercises drain.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.harness.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.server import ExperimentService


class ServerThread:
    """Context manager: a live service on ``127.0.0.1:<auto>``."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 workers: int = 2, queue_capacity: int = 64,
                 worker_mode: str = "process"):
        self.service = ExperimentService(
            host="127.0.0.1", port=0, workers=workers,
            queue_capacity=queue_capacity, cache=cache,
            worker_mode=worker_mode)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.service.port

    def client(self, timeout: float = 300.0) -> ServeClient:
        return ServeClient(port=self.port, timeout=timeout)

    # ------------------------------------------------------------------

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001 -- report to starter
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self.service.wait_drained()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=180):
            raise RuntimeError("service failed to start within 180s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service startup failed: {self._startup_error}")
        return self

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.service.request_drain()))
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service did not drain in time")

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
