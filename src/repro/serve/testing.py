"""Test/benchmark support: run the service (or a fleet) on threads.

:class:`ServerThread` owns a private event loop on a daemon thread,
boots an :class:`~repro.serve.server.ExperimentService` on an
OS-assigned port (``port=0``) and tears it down through the same
graceful-drain path production uses -- so every test of the serving
layer also exercises drain.

:class:`CoordinatorThread` does the same for a
:class:`~repro.serve.cluster.CoordinatorService`, and
:class:`ClusterThread` composes them into a whole in-process fleet:
one coordinator plus N workers, each with its own local cache root,
all sharing one read-through store -- started, registered and drained
as a unit.  ``kill_worker(i)`` stops one worker so tests can drive
the eviction/rebalancing path.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time
from pathlib import Path
from typing import List, Optional

from repro.harness.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.cluster import CoordinatorService
from repro.serve.server import ExperimentService


class ServerThread:
    """Context manager: a live service on ``127.0.0.1:<auto>``."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 workers: int = 2, queue_capacity: int = 64,
                 worker_mode: str = "process",
                 shared_store: Optional[str] = None,
                 coordinator_url: Optional[str] = None):
        self.service = ExperimentService(
            host="127.0.0.1", port=0, workers=workers,
            queue_capacity=queue_capacity, cache=cache,
            worker_mode=worker_mode, shared_store=shared_store,
            coordinator_url=coordinator_url)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self.service.port

    def client(self, timeout: float = 300.0) -> ServeClient:
        return ServeClient(port=self.port, timeout=timeout)

    # ------------------------------------------------------------------

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001 -- report to starter
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self.service.wait_drained()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=180):
            raise RuntimeError("service failed to start within 180s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service startup failed: {self._startup_error}")
        return self

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.service.request_drain()))
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service did not drain in time")

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class CoordinatorThread:
    """Context manager: a live coordinator on ``127.0.0.1:<auto>``."""

    def __init__(self, shared_store: Optional[str] = None,
                 probe_interval: float = 0.2, evict_after: int = 2):
        self.service = CoordinatorService(
            host="127.0.0.1", port=0, shared_store=shared_store,
            probe_interval=probe_interval, evict_after=evict_after)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.service.port

    def client(self, timeout: float = 300.0) -> ServeClient:
        return ServeClient(port=self.port, timeout=timeout)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def main() -> None:
            try:
                await self.service.start()
            except BaseException as exc:  # noqa: BLE001 -- report to starter
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self.service.wait_drained()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def start(self) -> "CoordinatorThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-coordinator", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=180):
            raise RuntimeError("coordinator failed to start within 180s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"coordinator startup failed: {self._startup_error}")
        return self

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.service.request_drain()))
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("coordinator did not drain in time")

    def __enter__(self) -> "CoordinatorThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ClusterThread:
    """A whole in-process fleet: coordinator + N registered workers.

    Each worker gets a private local cache root; all workers and the
    coordinator share one read-through store.  ``start()`` blocks
    until every worker has registered, so tests can submit the moment
    the context manager returns.
    """

    def __init__(self, workers: int = 2, worker_processes: int = 1,
                 worker_mode: str = "process",
                 root: Optional[str] = None,
                 queue_capacity: int = 64,
                 probe_interval: float = 0.2, evict_after: int = 2):
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            root = self._tmp.name
        self.root = Path(root)
        self.shared_store = str(self.root / "shared")
        self.coordinator = CoordinatorThread(
            shared_store=self.shared_store,
            probe_interval=probe_interval, evict_after=evict_after)
        self._worker_count = workers
        self._worker_processes = worker_processes
        self._worker_mode = worker_mode
        self._queue_capacity = queue_capacity
        self.workers: List[ServerThread] = []

    def client(self, timeout: float = 300.0) -> ServeClient:
        """A client against the coordinator front door."""
        return self.coordinator.client(timeout=timeout)

    def worker_client(self, index: int,
                      timeout: float = 300.0) -> ServeClient:
        return self.workers[index].client(timeout=timeout)

    def start(self, register_timeout: float = 30.0) -> "ClusterThread":
        self.coordinator.start()
        coordinator_url = f"127.0.0.1:{self.coordinator.port}"
        for i in range(self._worker_count):
            worker = ServerThread(
                cache=ResultCache(self.root / f"worker-{i}"),
                workers=self._worker_processes,
                queue_capacity=self._queue_capacity,
                worker_mode=self._worker_mode,
                shared_store=self.shared_store,
                coordinator_url=coordinator_url)
            worker.start()
            self.workers.append(worker)
        deadline = time.monotonic() + register_timeout
        while time.monotonic() < deadline:
            live = len(self.coordinator.service.router)
            if live >= self._worker_count:
                return self
            time.sleep(0.05)
        raise RuntimeError(
            f"only {len(self.coordinator.service.router)} of "
            f"{self._worker_count} workers registered within "
            f"{register_timeout}s")

    def kill_worker(self, index: int) -> None:
        """Stop one worker (its port goes dark; the coordinator's
        health loop then evicts it and reroutes its key share)."""
        self.workers[index].stop()

    def stop(self) -> None:
        for worker in self.workers:
            try:
                worker.stop()
            except RuntimeError:
                pass  # already killed by the test
        self.coordinator.stop()
        if self._tmp is not None:
            self._tmp.cleanup()

    def __enter__(self) -> "ClusterThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
