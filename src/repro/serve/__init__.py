"""repro.serve: async experiment service over the harness.

The serving layer exposes every harness-runnable experiment over
HTTP/JSON (stdlib-only: ``asyncio`` streams and hand-rolled HTTP/1.1
framing -- no new dependencies):

- ``POST /v1/jobs`` validates an :class:`ExperimentSpec` (a single
  registered job, a parameter sweep, a lint run or a trace capture)
  and enqueues it on a bounded priority queue; a full queue answers
  ``429`` with ``Retry-After`` (explicit backpressure, never unbounded
  buffering).
- Identical concurrent submissions are **coalesced** on their
  schema-versioned SHA-256 job keys: N waiters, one execution, the
  result fanned out to all of them.
- A process-pool worker tier executes specs through the same
  :func:`repro.harness.executor.run_jobs` path the batch CLI uses,
  sharing its content-addressed :class:`ResultCache` -- a result
  computed by ``python -m repro batch`` warms the server, and vice
  versa.
- ``GET /v1/jobs/<id>/events`` streams job lifecycle as NDJSON;
  ``/healthz`` and ``/metrics`` surface queue depth, coalescing and
  cache hit-rates and per-kind latency histograms built on the
  :mod:`repro.observe` event bus.
- **Cluster mode** (:mod:`repro.serve.cluster`): a coordinator routes
  submissions to N registered worker nodes by rendezvous-hashing
  their job keys, coalesces identical fleet-wide submissions, splits
  sweeps across the fleet, and evicts/reroutes around dead workers;
  results tier through memory -> local disk -> a shared read-through
  store (:class:`repro.harness.cache.TieredResultCache`).

Quick start::

    python -m repro serve --port 8787 --workers 4 &
    python -m repro submit covert --wait

or programmatically::

    from repro.serve import ServeClient
    client = ServeClient(port=8787)
    record = client.submit_and_wait(
        {"kind": "job",
         "params": {"fn": "debug.echo", "params": {"x": 1}}})
    print(record["result"])

See ``docs/SERVE.md`` for the full API reference.
"""

from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.cluster import ClusterError, CoordinatorService
from repro.serve.metrics import SERVE_KINDS, ServiceMetrics
from repro.serve.queue import BoundedPriorityQueue, QueueClosed, QueueFull
from repro.serve.router import RendezvousRouter, WorkerNode
from repro.serve.spec import (
    KINDS,
    SPEC_SCHEMA_VERSION,
    ExperimentSpec,
    SpecError,
)
from repro.serve.worker import WorkerTier

__all__ = [
    "Backpressure",
    "BoundedPriorityQueue",
    "ClusterError",
    "CoordinatorService",
    "ExperimentSpec",
    "KINDS",
    "QueueClosed",
    "QueueFull",
    "RendezvousRouter",
    "SERVE_KINDS",
    "SPEC_SCHEMA_VERSION",
    "ServeClient",
    "ServeError",
    "ServiceMetrics",
    "SpecError",
    "WorkerNode",
    "WorkerTier",
]
