"""Thin synchronous client for the experiment service.

Built on :mod:`http.client` (stdlib), one request per connection to
match the server's ``Connection: close`` framing.  The client is the
programmatic face of ``python -m repro submit``: submit a spec, poll
or stream until terminal, fetch artifacts.

:class:`Backpressure` is a typed signal, not a failure --
:meth:`ServeClient.submit_and_wait` honours the server's
``Retry-After`` estimate and retries a bounded number of times before
giving up.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional


class ServeError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class Backpressure(ServeError):
    """429: the admission queue is full; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(429, message)
        self.retry_after = retry_after


class ServeClient:
    """Synchronous HTTP client for one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {} if payload is None else {
                "Content-Type": "application/json"}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                doc = {"error": raw[:200].decode("utf-8", "replace")}
            if response.status == 429:
                retry_after = float(
                    doc.get("retry_after")
                    or response.getheader("Retry-After") or 1.0)
                raise Backpressure(str(doc.get("error", "queue full")),
                                   retry_after)
            if response.status >= 400:
                raise ServeError(response.status,
                                 str(doc.get("error", raw[:200])))
            return doc
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # endpoints

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a spec document; returns the job record (terminal when
        the cache answered, queued/coalesced otherwise)."""
        return self._request("POST", "/v1/jobs", body=spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def artifact(self, job_id: str, name: str) -> bytes:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/artifacts/{name}")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(raw)["error"]
                except (ValueError, KeyError, TypeError):
                    message = raw[:200].decode("utf-8", "replace")
                raise ServeError(response.status, str(message))
            return raw
        finally:
            conn.close()

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON lifecycle events until the server
        closes the stream (the last event has ``event == "end"``)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw)["error"]
                except (ValueError, KeyError, TypeError):
                    message = raw[:200].decode("utf-8", "replace")
                raise ServeError(response.status, str(message))
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # conveniences

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job record is terminal; returns the record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record.get("status") in ("done", "failed", "timeout",
                                        "cancelled"):
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.get('status')} after "
                    f"{timeout}s")
            time.sleep(poll)

    def submit_and_wait(self, spec: Dict[str, Any],
                        timeout: Optional[float] = None,
                        backpressure_retries: int = 5) -> Dict[str, Any]:
        """Submit with bounded backpressure retries, then wait."""
        attempts = 0
        while True:
            try:
                record = self.submit(spec)
                break
            except Backpressure as exc:
                attempts += 1
                if attempts > backpressure_retries:
                    raise
                time.sleep(min(exc.retry_after, 10.0))
        if record.get("status") in ("done", "failed", "timeout", "cancelled"):
            return record
        return self.wait(record["id"], timeout=timeout)
