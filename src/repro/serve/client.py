"""Thin synchronous client for the experiment service.

Built on :mod:`http.client` (stdlib), one request per connection to
match the server's ``Connection: close`` framing.  The client is the
programmatic face of ``python -m repro submit``: submit a spec, poll
or stream until terminal, fetch artifacts.

:class:`Backpressure` is a typed signal, not a failure --
:meth:`ServeClient.submit_and_wait` honours the server's
``Retry-After`` estimate and retries a bounded number of times before
giving up.  Every deadline the client enforces (``wait``'s timeout,
the backpressure backoff) is clamped against the caller's remaining
budget on the monotonic clock, and ``timeout=0`` means exactly one
non-blocking check.

Cluster mode: constructed with ``endpoints=["hostA:8786",
"hostB:8786"]`` the client talks to whichever endpoint answers,
failing over to the next on a transport error (connection refused,
reset) and staying sticky on the one that worked.  HTTP error
*documents* (429, 409, ...) come from a live server and do not
trigger failover.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

_TERMINAL = ("done", "failed", "timeout", "cancelled")


class ServeError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class Backpressure(ServeError):
    """429: the admission queue is full; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(429, message)
        self.retry_after = retry_after


def _parse_endpoint(endpoint: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(endpoint, str):
        host, _, port = endpoint.rpartition(":")
        return host or "127.0.0.1", int(port)
    host, port = endpoint
    return host, int(port)


class ServeClient:
    """Synchronous HTTP client for one service (or a fleet of them)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 300.0,
                 endpoints: Optional[
                     Sequence[Union[str, Tuple[str, int]]]] = None):
        if endpoints:
            self._endpoints: List[Tuple[str, int]] = [
                _parse_endpoint(e) for e in endpoints]
        else:
            self._endpoints = [(host, int(port))]
        self._active = 0
        self.timeout = timeout

    @property
    def host(self) -> str:
        return self._endpoints[self._active][0]

    @property
    def port(self) -> int:
        return self._endpoints[self._active][1]

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return list(self._endpoints)

    # ------------------------------------------------------------------
    # plumbing

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One exchange with transport-level failover: a connection
        error rotates to the next endpoint; an HTTP error document is
        from a live server and propagates as-is."""
        last_exc: Optional[Exception] = None
        for _ in range(len(self._endpoints)):
            try:
                return self._request_one(method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                last_exc = exc
                self._active = (self._active + 1) % len(self._endpoints)
        raise ConnectionError(
            f"no endpoint answered {method} {path}: {last_exc}")

    def _request_one(self, method: str, path: str,
                     body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {} if payload is None else {
                "Content-Type": "application/json"}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                doc = {"error": raw[:200].decode("utf-8", "replace")}
            if response.status == 429:
                retry_after = float(
                    doc.get("retry_after")
                    or response.getheader("Retry-After") or 1.0)
                raise Backpressure(str(doc.get("error", "queue full")),
                                   retry_after)
            if response.status >= 400:
                raise ServeError(response.status,
                                 str(doc.get("error", raw[:200])))
            return doc
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # endpoints

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """POST a spec document; returns the job record (terminal when
        the cache answered, queued/coalesced otherwise)."""
        return self._request("POST", "/v1/jobs", body=spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def artifact(self, job_id: str, name: str) -> bytes:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/artifacts/{name}")
            response = conn.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(raw)["error"]
                except (ValueError, KeyError, TypeError):
                    message = raw[:200].decode("utf-8", "replace")
                raise ServeError(response.status, str(message))
            return raw
        finally:
            conn.close()

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream the job's NDJSON lifecycle events until the server
        closes the stream (the last event has ``event == "end"``)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw)["error"]
                except (ValueError, KeyError, TypeError):
                    message = raw[:200].decode("utf-8", "replace")
                raise ServeError(response.status, str(message))
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # conveniences

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job record is terminal; returns the record.

        ``timeout=0`` is a single non-blocking check: one status poll,
        then the record (if terminal) or an immediate
        :class:`TimeoutError` -- never a sleep.  With a positive
        timeout the sleep between polls is clamped to the remaining
        budget, so the call returns within ``timeout`` plus one poll's
        network latency rather than overshooting by a whole interval.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record.get("status") in _TERMINAL:
                return record
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {record.get('status')} after "
                        f"{timeout}s")
                time.sleep(min(poll, remaining))
            else:
                time.sleep(poll)

    def submit_many(self, specs: Sequence[Dict[str, Any]],
                    max_in_flight: int = 8,
                    timeout: Optional[float] = None,
                    backpressure_retries: int = 5,
                    poll: float = 0.05) -> List[Dict[str, Any]]:
        """Submit a batch with at most ``max_in_flight`` unfinished
        jobs on the server; returns terminal records in spec order.

        Backpressure is honoured *across the batch*: one 429 pauses all
        further submissions until the server's ``Retry-After`` estimate
        has elapsed (in-flight jobs keep being polled and drained
        meanwhile), instead of every pending spec independently
        hammering a full queue.  Each spec gets at most
        ``backpressure_retries`` re-submissions; ``timeout`` bounds the
        whole batch on the monotonic clock.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        results: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        pending: List[Tuple[int, Dict[str, Any], int]] = [
            (i, spec, 0) for i, spec in enumerate(specs)]
        pending.reverse()  # pop() submits in spec order
        # job id -> spec indices: identical specs coalesce server-side
        # onto ONE job id, so several batch slots can ride one job
        in_flight: Dict[str, List[int]] = {}
        pause_until = 0.0
        while pending or in_flight:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"submit_many: {len(pending)} unsubmitted, "
                    f"{len(in_flight)} in flight after {timeout}s")
            # top up the window, unless the fleet asked for a pause
            while (pending and len(in_flight) < max_in_flight
                   and time.monotonic() >= pause_until):
                index, spec, attempts = pending.pop()
                try:
                    record = self.submit(spec)
                except Backpressure as exc:
                    if attempts >= backpressure_retries:
                        raise
                    pause_until = time.monotonic() + min(exc.retry_after, 10.0)
                    pending.append((index, spec, attempts + 1))
                    break
                if record.get("status") in _TERMINAL:
                    results[index] = record  # cache answered at admission
                else:
                    in_flight.setdefault(record["id"], []).append(index)
            # drain whatever finished
            for job_id in list(in_flight):
                record = self.status(job_id)
                if record.get("status") in _TERMINAL:
                    for index in in_flight.pop(job_id):
                        results[index] = record
            if pending or in_flight:
                delay = poll
                if pending and len(in_flight) < max_in_flight:
                    delay = min(delay, max(0.0,
                                           pause_until - time.monotonic()))
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - time.monotonic()))
                if delay:
                    time.sleep(delay)
        return results  # type: ignore[return-value]  (all slots filled)

    def submit_and_wait(self, spec: Dict[str, Any],
                        timeout: Optional[float] = None,
                        backpressure_retries: int = 5) -> Dict[str, Any]:
        """Submit with bounded backpressure retries, then wait.

        ``timeout`` bounds the *whole* call: backpressure backoff
        sleeps are clamped to the remaining budget (a 30 s Retry-After
        cannot blow through a 5 s deadline), and whatever budget the
        retries consumed is deducted from the wait."""
        deadline = None if timeout is None else time.monotonic() + timeout
        attempts = 0
        while True:
            try:
                record = self.submit(spec)
                break
            except Backpressure as exc:
                attempts += 1
                if attempts > backpressure_retries:
                    raise
                delay = min(exc.retry_after, 10.0)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"queue stayed full past the {timeout}s "
                            f"deadline") from exc
                    delay = min(delay, remaining)
                time.sleep(delay)
        if record.get("status") in _TERMINAL:
            return record
        remaining_t = (None if deadline is None
                       else max(0.0, deadline - time.monotonic()))
        return self.wait(record["id"], timeout=remaining_t)
