"""The cluster coordinator: route, forward, coalesce, heal.

:class:`CoordinatorService` is the fleet-facing front end of the
distributed serving tier.  It owns no worker pool of its own --
execution happens on N registered worker nodes, each an ordinary
:class:`~repro.serve.server.ExperimentService` started with
``coordinator_url`` pointing here -- and instead owns the three things
a fleet needs exactly one of:

**Routing.**  Every submission is keyed by its spec's schema-versioned
SHA-256 content hash and routed to a worker via rendezvous hashing
(:class:`~repro.serve.router.RendezvousRouter`), so identical
submissions always land on the same node, where the worker's own
coalescing map and local cache tier finish the job.  Evicting a
worker reroutes only its ~1/N key share.

**Coalescing.**  The coordinator keeps the same ``active`` key -> record
map the single-node service keeps, so N identical submissions arriving
across the fleet's front door attach to one in-flight forward and the
``executed`` counter moves once per unique key -- the cluster-wide
generalisation of PR 7's single-node guarantee.

**Health.**  A probe loop hits every worker's ``/healthz`` on an
interval; consecutive failures evict the node from the router.  A
forward already in flight to a dying node fails over down the key's
rendezvous ranking (:meth:`RendezvousRouter.ranked`) and re-dispatches
-- a worker that finished the job before dying has already written
the shared store, so the re-dispatch is usually a cache hit on the
next node.  Workers re-register on a heartbeat, so an evicted node
that comes back simply reappears in the router.

**Replicated sweeps.**  A ``sweep`` spec is split into its per-point
``job`` specs, each routed *by its own harness job key* across the
fleet and executed concurrently; the coordinator reassembles the
results in grid order into the same merged document a single node
would have produced.  Duplicate grid points dispatch once.

Results flow back through the shared read-through store
(``shared_store``): workers write through to it, the coordinator's
cache fast path reads it, so a result computed anywhere is a cache
hit everywhere.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.cache import ResultCache
from repro.serve.http import FetchError, http_fetch, read_request, respond
from repro.serve.metrics import ServiceMetrics
from repro.serve.router import RendezvousRouter, WorkerNode
from repro.serve.server import (DEFAULT_JOB_CEILING_S, TIMEOUT_GRACE_S,
                                JobRecord, stream_record_events)
from repro.serve.spec import ExperimentSpec, SpecError

#: Default coordinator port (workers default to 8787).
COORDINATOR_PORT = 8786

#: Consecutive failed probes/forwards before a worker is evicted.
EVICT_AFTER_FAILURES = 3

#: How often the health loop probes each live worker.
PROBE_INTERVAL_S = 1.0

#: Per-probe timeout (a worker slower than this is as good as down).
PROBE_TIMEOUT_S = 5.0

#: Concurrent per-job forwards per sweep (per coordinator instance).
SWEEP_FAN_OUT = 16

_TERMINAL = ("done", "failed", "timeout", "cancelled")


class ClusterError(RuntimeError):
    """A forward could not complete on any live worker."""


class CoordinatorService:
    """Route + coalesce + heal over a fleet of worker services."""

    def __init__(self, host: str = "127.0.0.1", port: int = COORDINATOR_PORT,
                 shared_store: Optional[str] = None,
                 probe_interval: float = PROBE_INTERVAL_S,
                 evict_after: int = EVICT_AFTER_FAILURES):
        self.host = host
        self.port = port
        self.router = RendezvousRouter()
        self.cache: Optional[ResultCache] = (
            ResultCache(shared_store) if shared_store is not None else None)
        self.shared_store = shared_store
        self.probe_interval = probe_interval
        self.evict_after = max(1, int(evict_after))
        self.metrics = ServiceMetrics()
        self.jobs: Dict[str, JobRecord] = {}
        self.active: Dict[str, JobRecord] = {}
        self.draining = False
        self.evictions = 0
        self._job_ids = itertools.count(1)
        self._dispatches: Dict[str, asyncio.Task] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._health: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._health = asyncio.create_task(
            self._health_loop(), name="coordinator-health")

    async def request_drain(self) -> None:
        """Refuse new submissions, let in-flight forwards finish."""
        if self.draining:
            return
        self.draining = True
        if self._health is not None:
            self._health.cancel()
        pending = [t for t in self._dispatches.values() if not t.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    # ------------------------------------------------------------------
    # fleet health

    def _note_failure(self, node: WorkerNode) -> None:
        node.failures += 1
        if node.alive and node.failures >= self.evict_after:
            if self.router.evict(node.node_id):
                self.evictions += 1

    async def _probe(self, node: WorkerNode) -> None:
        try:
            status, doc = await http_fetch(
                node.host, node.port, "GET", "/healthz",
                timeout=PROBE_TIMEOUT_S)
        except FetchError:
            self._note_failure(node)
            return
        if status == 200 and doc.get("status") in ("ok", "draining"):
            node.failures = 0
            node.last_seen_mono = time.monotonic()
        else:
            self._note_failure(node)

    async def _health_loop(self) -> None:
        while not self.draining:
            await asyncio.sleep(self.probe_interval)
            live = list(self.router.live_nodes)
            if live:
                await asyncio.gather(*(self._probe(n) for n in live),
                                     return_exceptions=True)

    # ------------------------------------------------------------------
    # admission (mirrors the single-node service, minus the queue)

    def submit(self, spec: ExperimentSpec) -> Tuple[JobRecord, bool]:
        """Coalesce, answer from the shared store, or dispatch.

        Raises :class:`ClusterError` when the fleet is empty."""
        if self.draining:
            raise ClusterError("coordinator is draining")
        key = spec.key()

        twin = self.active.get(key)
        if twin is not None and not twin.terminal:
            twin.coalesced += 1
            self.metrics.coalesced(spec.kind, key)
            return twin, False

        hit = spec.cached_result(self.cache)
        if hit is not None:
            record = self._new_record(spec, "cache")
            record.status = "done"
            record.result = hit
            record.finished_at = record.submitted_at
            record.finished_mono = record.submitted_mono
            record.done_event.set()
            self.metrics.cache_hit(spec.kind, key)
            return record, True

        if not len(self.router):
            raise ClusterError("no live workers registered")

        record = self._new_record(spec, "queued")
        self.active[key] = record
        self.metrics.submitted(spec.kind, key)
        task = asyncio.create_task(self._dispatch(record),
                                   name=f"dispatch-{record.job_id}")
        self._dispatches[record.job_id] = task
        task.add_done_callback(
            lambda _t, jid=record.job_id: self._dispatches.pop(jid, None))
        return record, True

    def _new_record(self, spec: ExperimentSpec, source: str) -> JobRecord:
        record = JobRecord(f"c{next(self._job_ids):06d}", spec, source)
        self.jobs[record.job_id] = record
        return record

    def cancel(self, record: JobRecord) -> bool:
        """Cancel a not-yet-running forward.  As on the single node,
        the one ``finish`` transitions *every* coalesced waiter --
        their streams get ``finished`` + ``end``, their polls see
        ``cancelled``."""
        if record.terminal or record.status == "running":
            return False
        task = self._dispatches.pop(record.job_id, None)
        if task is not None:
            task.cancel()
        self.active.pop(record.key, None)
        record.finish("cancelled", error="cancelled before dispatch")
        self.metrics.finished(record.spec.describe(), record.key,
                              "cancelled", record.latency_s())
        return True

    # ------------------------------------------------------------------
    # forwarding

    def _ceiling(self, spec: ExperimentSpec) -> float:
        if spec.timeout is not None:
            return spec.timeout * (1 + spec.retries) + TIMEOUT_GRACE_S
        return DEFAULT_JOB_CEILING_S

    async def _forward_on(self, node: WorkerNode, doc: Dict[str, Any],
                          ceiling: float) -> Dict[str, Any]:
        """Run one spec document to a terminal record on ``node``.

        Raises :class:`FetchError` when the node stops answering --
        the caller's failover loop turns that into a re-dispatch."""
        deadline = time.monotonic() + ceiling
        while True:  # admission, with worker-side backpressure honoured
            status, reply = await http_fetch(
                node.host, node.port, "POST", "/v1/jobs?forwarded=1",
                body=doc, timeout=PROBE_TIMEOUT_S)
            if status == 429:
                if time.monotonic() >= deadline:
                    raise ClusterError(
                        f"{node.node_id} stayed backpressured past the "
                        f"{ceiling:.0f}s ceiling")
                await asyncio.sleep(
                    min(float(reply.get("retry_after", 1.0)), 2.0))
                continue
            if status >= 400:
                raise ClusterError(
                    f"{node.node_id} refused forward: "
                    f"{reply.get('error', status)}")
            break
        node.forwarded += 1
        if reply.get("status") in _TERMINAL:
            return reply
        worker_job = reply["id"]
        poll = 0.02
        while True:
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"{node.node_id} did not finish within the "
                    f"{ceiling:.0f}s ceiling")
            await asyncio.sleep(poll)
            poll = min(poll * 1.5, 0.5)
            _status, rec = await http_fetch(
                node.host, node.port, "GET", f"/v1/jobs/{worker_job}",
                timeout=PROBE_TIMEOUT_S)
            if rec.get("status") in _TERMINAL:
                return rec

    async def _dispatch_one(self, doc: Dict[str, Any], key: str,
                            ceiling: float) -> Dict[str, Any]:
        """Forward one spec by key with rendezvous failover: walk the
        key's preference ranking, skipping nodes as they die."""
        tried: set = set()
        last_error: Optional[Exception] = None
        while True:
            candidates = [n for n in self.router.ranked(key)
                          if n.node_id not in tried]
            if not candidates:
                raise ClusterError(
                    f"no live worker could run key {key[:12]}...: "
                    f"{last_error}")
            node = candidates[0]
            try:
                return await self._forward_on(node, doc, ceiling)
            except FetchError as exc:
                # The node went dark mid-forward: count it against the
                # node and fail over down the ranking.  If the node
                # finished before dying it wrote the shared store, so
                # the re-dispatch is a cache hit on its successor.
                last_error = exc
                tried.add(node.node_id)
                self._note_failure(node)

    async def _dispatch(self, record: JobRecord) -> None:
        spec = record.spec
        status, result, error = "failed", None, "unknown cluster failure"
        try:
            record.status = "running"
            record.started_at = time.time()
            record.started_mono = time.monotonic()
            record.publish("started")
            if spec.kind == "sweep":
                result = await self._run_sweep(record)
                status, error = "done", None
            else:
                self.metrics.started(spec.kind, record.key)
                wrec = await self._dispatch_one(
                    spec.as_dict(), record.key, self._ceiling(spec))
                status = str(wrec.get("status"))
                result = wrec.get("result")
                error = wrec.get("error")
        except asyncio.CancelledError:
            return  # cancel() already finished the record
        except ClusterError as exc:
            status, error = "failed", str(exc)
        except Exception as exc:  # noqa: BLE001 -- keep the loop alive
            status, error = "failed", f"{type(exc).__name__}: {exc}"
        finally:
            self.active.pop(record.key, None)
            if not record.terminal:
                record.finish(status, result=result, error=error)
                self.metrics.finished(spec.describe(), record.key, status,
                                      record.latency_s())

    async def _run_sweep(self, record: JobRecord) -> Dict[str, Any]:
        """Split a sweep across the fleet, reassemble in grid order.

        Each grid point becomes a ``job`` spec routed by its own
        harness job key; duplicate points dispatch once and the
        ``executed`` counter moves once per *unique* key."""
        spec = record.spec
        jobs = spec.jobs()
        order: List[str] = []
        unique: Dict[str, Dict[str, Any]] = {}
        for job in jobs:
            key = job.key()
            order.append(key)
            if key not in unique:
                unique[key] = {
                    "kind": "job",
                    "params": {"fn": job.fn, "params": dict(job.params)},
                    "cpu": spec.cpu,
                    "engine": spec.engine,
                    "seed": job.seed,
                    "priority": spec.priority,
                    "timeout": spec.timeout,
                    "retries": spec.retries,
                    "refresh": spec.refresh,
                }
        sem = asyncio.Semaphore(SWEEP_FAN_OUT)
        ceiling = self._ceiling(spec)

        async def one(key: str, doc: Dict[str, Any]) -> Dict[str, Any]:
            async with sem:
                self.metrics.started("job", key)
                return await self._dispatch_one(doc, key, ceiling)

        wrecs = await asyncio.gather(
            *(one(k, d) for k, d in unique.items()))
        by_key = dict(zip(unique.keys(), wrecs))
        failed = [(k, r) for k, r in by_key.items()
                  if r.get("status") != "done"]
        if failed:
            key, rec = failed[0]
            raise ClusterError(
                f"{len(failed)}/{len(unique)} sweep shard(s) failed; "
                f"first ({key[:12]}...): {rec.get('error')}")
        docs = [by_key[k]["result"] for k in order]
        return {
            "kind": "sweep",
            "executed": sum(d.get("executed", 0) for d in docs),
            "cached": sum(d.get("cached", 0) for d in docs),
            "retries": sum(d.get("retries", 0) for d in docs),
            "results": [d.get("result") for d in docs],
        }

    # ------------------------------------------------------------------
    # HTTP

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        parts = [p for p in path.split("?", 1)[0].split("/") if p]

        if method == "GET" and parts == ["healthz"]:
            await respond(writer, 200, self._healthz())
            return
        if method == "GET" and parts == ["metrics"]:
            await respond(writer, 200, self._metrics_doc())
            return
        if parts[:2] == ["v1", "workers"]:
            await self._route_workers(method, parts, body, writer)
            return
        if parts[:2] != ["v1", "jobs"]:
            await respond(writer, 404, {"error": f"no route {path}"})
            return

        if method == "POST" and len(parts) == 2:
            await self._post_job(body, writer)
            return
        if method == "GET" and len(parts) == 2:
            listing = [r.to_json() for r in self.jobs.values()]
            await respond(writer, 200, {"jobs": listing})
            return

        record = self.jobs.get(parts[2]) if len(parts) >= 3 else None
        if record is None:
            await respond(writer, 404,
                          {"error": f"unknown job {parts[2:3]}"})
            return
        if method == "GET" and len(parts) == 3:
            await respond(writer, 200, record.to_json())
        elif method == "DELETE" and len(parts) == 3:
            if self.cancel(record):
                await respond(writer, 200, record.to_json())
            else:
                await respond(
                    writer, 409,
                    {"error": f"job is {record.status}; only queued "
                              f"jobs can be cancelled",
                     "record": record.to_json()})
        elif method == "GET" and len(parts) == 4 and parts[3] == "events":
            await stream_record_events(record, writer)
        else:
            await respond(writer, 405,
                          {"error": f"{method} not allowed on {path}"})

    async def _route_workers(self, method: str, parts: List[str],
                             body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        if method == "POST" and parts == ["v1", "workers", "register"]:
            try:
                doc = json.loads(body.decode("utf-8") or "null")
                host = str(doc["host"])
                port = int(doc["port"])
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                await respond(writer, 400,
                              {"error": "register needs {host, port}"})
                return
            node = self.router.add(host, port, time.monotonic())
            await respond(writer, 200,
                          {"registered": node.node_id,
                           "fleet": len(self.router)})
            return
        if method == "GET" and parts == ["v1", "workers"]:
            await respond(writer, 200,
                          {"workers": [n.to_json()
                                       for n in self.router.nodes],
                           "live": len(self.router),
                           "evictions": self.evictions})
            return
        await respond(writer, 405,
                      {"error": f"{method} not allowed on /v1/workers"})

    async def _post_job(self, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            await respond(writer, 400, {"error": "body is not JSON"})
            return
        try:
            spec = ExperimentSpec.from_json(doc)
        except SpecError as exc:
            self.metrics.rejected("invalid")
            await respond(writer, 400, {"error": str(exc)})
            return
        try:
            record, created = self.submit(spec)
        except ClusterError as exc:
            self.metrics.rejected("no_workers")
            await respond(writer, 503, {"error": str(exc)})
            return
        status = 200 if record.terminal else 202
        await respond(writer, status,
                      {"coalesced": not created, **record.to_json()})

    # ------------------------------------------------------------------
    # documents

    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "role": "coordinator",
            "workers": [n.to_json() for n in self.router.nodes],
            "live_workers": len(self.router),
            "evictions": self.evictions,
            "jobs_tracked": len(self.jobs),
            "in_flight": len(self.active),
            "shared_store": self.shared_store,
        }

    def _metrics_doc(self) -> Dict[str, Any]:
        return self.metrics.to_json(
            role="coordinator",
            live_workers=len(self.router),
            evictions=self.evictions,
            in_flight=len(self.active),
            draining=self.draining,
        )


async def coordinate_forever(service: CoordinatorService) -> None:
    """Run until drained; installs SIGTERM/SIGINT drain handlers."""
    await service.start()
    loop = asyncio.get_running_loop()

    def _drain() -> None:
        asyncio.ensure_future(service.request_drain())

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _drain)
        except (NotImplementedError, RuntimeError):
            pass
    await service.wait_drained()


def run_coordinator(host: str = "127.0.0.1", port: int = COORDINATOR_PORT,
                    shared_store: Optional[str] = None) -> None:
    """Blocking entry point (``python -m repro serve --coordinator``)."""
    service = CoordinatorService(host=host, port=port,
                                 shared_store=shared_store)
    asyncio.run(coordinate_forever(service))
