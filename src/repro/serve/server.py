"""The experiment service: asyncio HTTP front end over the harness.

One event loop owns admission; a handful of runner coroutines shuttle
specs from the :class:`~repro.serve.queue.BoundedPriorityQueue` to the
:class:`~repro.serve.worker.WorkerTier`; results fan out to every
waiter attached to a job record.  The HTTP layer is deliberately
minimal -- hand-rolled HTTP/1.1 over ``asyncio.start_server``, one
request per connection (``Connection: close``) -- because the payloads
are small JSON documents and NDJSON streams, and the stdlib-only
constraint rules out a framework.

Coalescing is the structural centerpiece: ``active`` maps the spec's
schema-versioned SHA-256 key to the single in-flight
:class:`JobRecord`; an identical concurrent submission attaches to the
existing record (a new job id, zero new work) and the ``executed``
metric counter stays at one.  Because ``job`` spec keys *are* harness
job keys, the coalescing map, the on-disk result cache and the batch
CLI all share one key space.

Shutdown is a drain, not an abort: ``request_drain()`` flips the
service to refuse new submissions (503), closes the queue so runners
exit once it is empty, lets in-flight work finish, then closes the
listener and the worker tier.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.harness.cache import ResultCache
from repro.serve.metrics import ServiceMetrics
from repro.serve.queue import BoundedPriorityQueue, QueueClosed, QueueFull
from repro.serve.spec import ExperimentSpec, SpecError
from repro.serve.worker import WorkerTier

#: Grace added to a spec's own timeout for the server-side ceiling --
#: the worker enforces the precise deadline (SIGALRM); this backstop
#: only catches a wedged worker or thread-mode degradation.
TIMEOUT_GRACE_S = 10.0

#: Ceiling for specs that declare no timeout of their own.
DEFAULT_JOB_CEILING_S = 600.0

_TERMINAL = ("done", "failed", "timeout", "cancelled")


class JobRecord:
    """Server-side state for one logical job (possibly many waiters)."""

    __slots__ = ("job_id", "spec", "key", "status", "result", "error",
                 "submitted_at", "started_at", "finished_at", "coalesced",
                 "source", "done_event", "subscribers")

    def __init__(self, job_id: str, spec: ExperimentSpec, source: str):
        self.job_id = job_id
        self.spec = spec
        self.key = spec.key()
        self.status = "queued"
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.coalesced = 0           # submissions that attached to this record
        self.source = source         # queued | coalesced | cache
        self.done_event = asyncio.Event()
        self.subscribers: List[asyncio.Queue] = []

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def to_json(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "key": self.key,
            "kind": self.spec.kind,
            "describe": self.spec.describe(),
            "status": self.status,
            "source": self.source,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }

    # -- lifecycle fan-out --------------------------------------------

    def publish(self, event: str, **data) -> None:
        doc = {"event": event, "id": self.job_id, "status": self.status,
               **data}
        for sub in list(self.subscribers):
            try:
                sub.put_nowait(doc)
            except asyncio.QueueFull:
                pass  # a stalled streamer drops updates, not the job

    def finish(self, status: str, result: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None) -> None:
        self.status = status
        self.result = result
        self.error = error
        self.finished_at = time.time()
        self.done_event.set()
        self.publish("finished", error=error)


class ExperimentService:
    """The service: queue + workers + coalescing map + HTTP routes."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 workers: int = 2, queue_capacity: int = 64,
                 cache: Optional[ResultCache] = None,
                 worker_mode: str = "process"):
        self.host = host
        self.port = port
        self.cache = cache if cache is not None else ResultCache()
        self.queue = BoundedPriorityQueue(capacity=queue_capacity)
        self.tier = WorkerTier(workers=workers, cache_root=self.cache.root,
                               mode=worker_mode)
        self.metrics = ServiceMetrics()
        self.jobs: Dict[str, JobRecord] = {}       # id -> record (all)
        self.active: Dict[str, JobRecord] = {}     # key -> in-flight record
        self.draining = False
        self._job_ids = itertools.count(1)
        self._server: Optional[asyncio.base_events.Server] = None
        self._runners: List[asyncio.Task] = []
        self._drained = asyncio.Event()
        self._runner_count = max(1, int(workers))

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self.tier.start()
        self._runners = [
            asyncio.create_task(self._runner(), name=f"serve-runner-{i}")
            for i in range(self._runner_count)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def request_drain(self) -> None:
        """Graceful shutdown: refuse new work, finish accepted work."""
        if self.draining:
            return
        self.draining = True
        await self.queue.close()
        if self._runners:
            await asyncio.gather(*self._runners, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.tier.shutdown(wait=True)
        self._drained.set()

    async def wait_drained(self) -> None:
        await self._drained.wait()

    # ------------------------------------------------------------------
    # admission

    def _new_record(self, spec: ExperimentSpec, source: str) -> JobRecord:
        job_id = f"j{next(self._job_ids):06d}"
        record = JobRecord(job_id, spec, source)
        self.jobs[job_id] = record
        return record

    def submit(self, spec: ExperimentSpec) -> Tuple[JobRecord, bool]:
        """Admit a spec: coalesce, answer from cache, or enqueue.

        Returns ``(record, created)`` where ``created`` is False when
        the submission attached to an in-flight twin.  Raises
        :class:`QueueFull`/:class:`QueueClosed` on refusal.
        """
        if self.draining:
            raise QueueClosed("service is draining")
        key = spec.key()

        # 1. Coalesce onto an in-flight twin (unless refresh demands a
        #    fresh execution *and* nothing identical is already queued
        #    -- a refresh twin still coalesces with a refresh in flight).
        twin = self.active.get(key)
        if twin is not None and not twin.terminal:
            twin.coalesced += 1
            self.metrics.coalesced(spec.kind, key)
            return twin, False

        # 2. Cache fast path: rebuild the result document from disk.
        hit = spec.cached_result(self.cache)
        if hit is not None:
            record = self._new_record(spec, "cache")
            record.status = "done"
            record.result = hit
            record.finished_at = record.submitted_at
            record.done_event.set()
            self.metrics.cache_hit(spec.kind, key)
            return record, True

        # 3. Enqueue (bounded: QueueFull propagates as HTTP 429).
        record = self._new_record(spec, "queued")
        retry_after = max(1.0, len(self.queue) * 0.5)
        self.queue.put_nowait(spec.priority, record, retry_after=retry_after)
        self.active[key] = record
        self.metrics.submitted(spec.kind, key)
        return record, True

    def cancel(self, record: JobRecord) -> bool:
        """Cancel a still-queued job; running jobs are not interrupted
        (worker processes are shared -- a SIGKILL would break the pool)."""
        if record.terminal or record.status == "running":
            return False
        removed = self.queue.remove(record)
        if removed:
            self.active.pop(record.key, None)
            record.finish("cancelled", error="cancelled while queued")
            self.metrics.finished(record.spec.describe(), record.key,
                                  "cancelled",
                                  time.time() - record.submitted_at)
        return removed

    # ------------------------------------------------------------------
    # execution

    def _ceiling(self, spec: ExperimentSpec) -> float:
        if spec.timeout is not None:
            base = spec.timeout * (1 + spec.retries)
            return base + TIMEOUT_GRACE_S
        return DEFAULT_JOB_CEILING_S

    async def _runner(self) -> None:
        """One consumer loop: queue -> worker tier -> record fan-out."""
        while True:
            try:
                record = await self.queue.get()
            except QueueClosed:
                return
            await self._execute(record)

    async def _execute(self, record: JobRecord) -> None:
        spec = record.spec
        record.status = "running"
        record.started_at = time.time()
        record.publish("started")
        self.metrics.started(spec.kind, record.key)
        loop = asyncio.get_running_loop()
        status, result, error = "failed", None, "unknown worker failure"
        try:
            future = self.tier.submit(spec)
            wrapped = asyncio.wrap_future(future, loop=loop)
            report = await asyncio.wait_for(wrapped, self._ceiling(spec))
            if report.get("ok"):
                status, result, error = "done", report.get("result"), None
            else:
                error = str(report.get("error"))
                status = ("timeout" if "JobTimeoutError" in error
                          else "failed")
        except asyncio.TimeoutError:
            status, error = "timeout", (
                f"server-side ceiling of {self._ceiling(spec):.0f}s exceeded")
        except Exception as exc:  # noqa: BLE001 -- keep the runner alive
            error = f"{type(exc).__name__}: {exc}"
        finally:
            self.active.pop(record.key, None)
            record.finish(status, result=result, error=error)
            self.metrics.finished(
                spec.describe(), record.key, status,
                record.finished_at - record.submitted_at)

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        body = b""
        if length:
            if length > 8 * 1024 * 1024:
                return None
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=30.0)
        return method.upper(), path, body

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: Any, *, content_type: str = "application/json",
                       extra_headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   503: "Service Unavailable"}
        if isinstance(payload, (dict, list)):
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        elif isinstance(payload, str):
            body = payload.encode()
        else:
            body = payload
        headers = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        parts = [p for p in path.split("?", 1)[0].split("/") if p]

        if method == "GET" and parts == ["healthz"]:
            await self._respond(writer, 200, self._healthz())
            return
        if method == "GET" and parts == ["metrics"]:
            await self._respond(writer, 200, self._metrics_doc())
            return
        if parts[:2] != ["v1", "jobs"]:
            await self._respond(writer, 404, {"error": f"no route {path}"})
            return

        if method == "POST" and len(parts) == 2:
            await self._post_job(body, writer)
            return
        if method == "GET" and len(parts) == 2:
            listing = [r.to_json() for r in self.jobs.values()]
            await self._respond(writer, 200, {"jobs": listing})
            return

        record = self.jobs.get(parts[2]) if len(parts) >= 3 else None
        if record is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {parts[2:3]}"})
            return

        if method == "GET" and len(parts) == 3:
            await self._respond(writer, 200, record.to_json())
        elif method == "DELETE" and len(parts) == 3:
            if self.cancel(record):
                await self._respond(writer, 200, record.to_json())
            else:
                await self._respond(
                    writer, 409,
                    {"error": f"job is {record.status}; only queued "
                              f"jobs can be cancelled",
                     "record": record.to_json()})
        elif method == "GET" and len(parts) == 4 and parts[3] == "events":
            await self._stream_events(record, writer)
        elif (method == "GET" and len(parts) == 5
              and parts[3] == "artifacts"):
            await self._get_artifact(record, parts[4], writer)
        else:
            await self._respond(writer, 405,
                                {"error": f"{method} not allowed on {path}"})

    # ------------------------------------------------------------------
    # route bodies

    async def _post_job(self, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            await self._respond(writer, 400, {"error": "body is not JSON"})
            return
        try:
            spec = ExperimentSpec.from_json(doc)
        except SpecError as exc:
            self.metrics.rejected("invalid")
            await self._respond(writer, 400, {"error": str(exc)})
            return
        try:
            record, created = self.submit(spec)
        except QueueFull as exc:
            self.metrics.rejected("backpressure")
            await self._respond(
                writer, 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers=(("Retry-After",
                                str(int(exc.retry_after + 0.5)) or "1"),))
            return
        except QueueClosed:
            self.metrics.rejected("draining")
            await self._respond(
                writer, 503,
                {"error": "service is draining; not accepting new jobs"})
            return
        if created and record.source == "queued":
            await self.queue.notify()
        status = 200 if record.terminal else 202
        await self._respond(writer, status,
                            {"coalesced": not created, **record.to_json()})

    async def _stream_events(self, record: JobRecord,
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON lifecycle stream; ends with an ``end`` event carrying
        the terminal record."""
        headers = ("HTTP/1.1 200 OK\r\n"
                   "Content-Type: application/x-ndjson\r\n"
                   "Connection: close\r\n\r\n")
        writer.write(headers.encode())

        def line(doc: Dict[str, Any]) -> bytes:
            return (json.dumps(doc, sort_keys=True) + "\n").encode()

        writer.write(line({"event": "snapshot", **record.to_json()}))
        await writer.drain()
        if not record.terminal:
            sub: asyncio.Queue = asyncio.Queue(maxsize=256)
            record.subscribers.append(sub)
            try:
                while not record.terminal:
                    getter = asyncio.create_task(sub.get())
                    waiter = asyncio.create_task(record.done_event.wait())
                    done, pending = await asyncio.wait(
                        {getter, waiter},
                        return_when=asyncio.FIRST_COMPLETED)
                    for task in pending:
                        task.cancel()
                    if getter in done:
                        writer.write(line(getter.result()))
                        await writer.drain()
                # flush whatever arrived before the terminal edge
                while not sub.empty():
                    writer.write(line(sub.get_nowait()))
            finally:
                if sub in record.subscribers:
                    record.subscribers.remove(sub)
        writer.write(line({"event": "end", "record": record.to_json()}))
        await writer.drain()

    async def _get_artifact(self, record: JobRecord, name: str,
                            writer: asyncio.StreamWriter) -> None:
        try:
            blob = self.cache.get_artifact(record.key, name)
        except ValueError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        if blob is None:
            await self._respond(
                writer, 404,
                {"error": f"no artifact {name!r} for job {record.job_id}"})
            return
        await self._respond(writer, 200, blob,
                            content_type="application/octet-stream")

    # ------------------------------------------------------------------
    # documents

    def _healthz(self) -> Dict[str, Any]:
        status = "draining" if self.draining else "ok"
        return {
            "status": status,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "workers": self.tier.workers,
            "worker_mode": self.tier.mode,
            "worker_degraded": self.tier.degraded,
            "jobs_tracked": len(self.jobs),
            "in_flight": len(self.active),
        }

    def _metrics_doc(self) -> Dict[str, Any]:
        return self.metrics.to_json(
            queue_depth=len(self.queue),
            queue_capacity=self.queue.capacity,
            in_flight=len(self.active),
            draining=self.draining,
            worker_mode=self.tier.mode,
        )


async def serve_forever(service: ExperimentService) -> None:
    """Run until drained; installs SIGTERM/SIGINT drain handlers."""
    await service.start()
    loop = asyncio.get_running_loop()

    def _drain() -> None:
        asyncio.ensure_future(service.request_drain())

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _drain)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or unsupported platform
    await service.wait_drained()


def run_server(host: str = "127.0.0.1", port: int = 8787, workers: int = 2,
               queue_capacity: int = 64,
               cache: Optional[ResultCache] = None,
               worker_mode: str = "process") -> None:
    """Blocking entry point (the ``python -m repro serve`` verb)."""
    service = ExperimentService(host=host, port=port, workers=workers,
                                queue_capacity=queue_capacity, cache=cache,
                                worker_mode=worker_mode)
    asyncio.run(serve_forever(service))
