"""The experiment service: asyncio HTTP front end over the harness.

One event loop owns admission; a handful of runner coroutines shuttle
specs from the :class:`~repro.serve.queue.BoundedPriorityQueue` to the
:class:`~repro.serve.worker.WorkerTier`; results fan out to every
waiter attached to a job record.  The HTTP layer is deliberately
minimal -- hand-rolled HTTP/1.1 over ``asyncio.start_server``, one
request per connection (``Connection: close``) -- because the payloads
are small JSON documents and NDJSON streams, and the stdlib-only
constraint rules out a framework.

Coalescing is the structural centerpiece: ``active`` maps the spec's
schema-versioned SHA-256 key to the single in-flight
:class:`JobRecord`; an identical concurrent submission attaches to the
existing record (a new job id, zero new work) and the ``executed``
metric counter stays at one.  Because ``job`` spec keys *are* harness
job keys, the coalescing map, the on-disk result cache and the batch
CLI all share one key space.

Shutdown is a drain, not an abort: ``request_drain()`` flips the
service to refuse new submissions (503), closes the queue so runners
exit once it is empty, lets in-flight work finish, then closes the
listener and the worker tier.

Two clocks, deliberately: **wall-clock** timestamps
(``submitted_at``/``started_at``/``finished_at``) appear in the JSON
record for operators to correlate with logs, while every *duration*
the service computes -- queue wait, job latency, the histogram feed --
comes from ``time.monotonic()`` captured at the same edges, so an NTP
step can skew a displayed timestamp but never a latency metric.

Cluster mode: constructed with a ``coordinator_url`` the service is a
*worker node* -- it registers itself with the coordinator on start
and re-registers on a heartbeat interval (registration doubles as the
liveness signal and as recovery after an eviction), and submissions
relayed by the coordinator arrive on the same ``POST /v1/jobs`` route
flagged ``?forwarded=1`` so ``/metrics`` can tell fleet traffic from
direct traffic.  See :mod:`repro.serve.cluster` for the coordinator.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import time
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.harness.cache import ResultCache, TieredResultCache
from repro.serve.http import FetchError, http_fetch, read_request, respond
from repro.serve.metrics import ServiceMetrics
from repro.serve.queue import BoundedPriorityQueue, QueueClosed, QueueFull
from repro.serve.spec import ExperimentSpec, SpecError
from repro.serve.worker import WorkerTier

#: Grace added to a spec's own timeout for the server-side ceiling --
#: the worker enforces the precise deadline (SIGALRM); this backstop
#: only catches a wedged worker or thread-mode degradation.
TIMEOUT_GRACE_S = 10.0

#: Ceiling for specs that declare no timeout of their own.
DEFAULT_JOB_CEILING_S = 600.0

#: How often a cluster worker re-registers with its coordinator.
HEARTBEAT_INTERVAL_S = 2.0

_TERMINAL = ("done", "failed", "timeout", "cancelled")


class JobRecord:
    """Server-side state for one logical job (possibly many waiters).

    Wall-clock timestamps (``*_at``) are display-only; the paired
    ``*_mono`` fields carry the same edges on the monotonic clock and
    are the only inputs to latency accounting, so a stepped system
    clock (NTP correction, manual set) cannot produce negative or
    inflated durations.
    """

    __slots__ = ("job_id", "spec", "key", "status", "result", "error",
                 "submitted_at", "started_at", "finished_at",
                 "submitted_mono", "started_mono", "finished_mono",
                 "coalesced", "source", "done_event", "subscribers")

    def __init__(self, job_id: str, spec: ExperimentSpec, source: str):
        self.job_id = job_id
        self.spec = spec
        self.key = spec.key()
        self.status = "queued"
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.submitted_mono = time.monotonic()
        self.started_mono: Optional[float] = None
        self.finished_mono: Optional[float] = None
        self.coalesced = 0           # submissions that attached to this record
        self.source = source         # queued | coalesced | cache
        self.done_event = asyncio.Event()
        self.subscribers: List[asyncio.Queue] = []

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def latency_s(self) -> float:
        """Submission-to-now (or -finish) on the monotonic clock."""
        end = (self.finished_mono if self.finished_mono is not None
               else time.monotonic())
        return max(0.0, end - self.submitted_mono)

    def queue_wait_s(self) -> Optional[float]:
        """Queue-admission to execution-start, monotonic."""
        if self.started_mono is None:
            return None
        return max(0.0, self.started_mono - self.submitted_mono)

    def to_json(self) -> Dict[str, Any]:
        return {
            "id": self.job_id,
            "key": self.key,
            "kind": self.spec.kind,
            "describe": self.spec.describe(),
            "status": self.status,
            "source": self.source,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }

    # -- lifecycle fan-out --------------------------------------------

    def publish(self, event: str, **data) -> None:
        doc = {"event": event, "id": self.job_id, "status": self.status,
               **data}
        for sub in list(self.subscribers):
            try:
                sub.put_nowait(doc)
            except asyncio.QueueFull:
                pass  # a stalled streamer drops updates, not the job

    def finish(self, status: str, result: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None) -> None:
        self.status = status
        self.result = result
        self.error = error
        self.finished_at = time.time()
        self.finished_mono = time.monotonic()
        self.done_event.set()
        self.publish("finished", error=error)


async def stream_record_events(record: JobRecord,
                               writer: asyncio.StreamWriter) -> None:
    """NDJSON lifecycle stream for one record; ends with an ``end``
    event carrying the terminal record.  Shared by the single-node
    service and the cluster coordinator."""
    headers = ("HTTP/1.1 200 OK\r\n"
               "Content-Type: application/x-ndjson\r\n"
               "Connection: close\r\n\r\n")
    writer.write(headers.encode())

    def line(doc: Dict[str, Any]) -> bytes:
        return (json.dumps(doc, sort_keys=True) + "\n").encode()

    writer.write(line({"event": "snapshot", **record.to_json()}))
    await writer.drain()
    if not record.terminal:
        sub: asyncio.Queue = asyncio.Queue(maxsize=256)
        record.subscribers.append(sub)
        try:
            while not record.terminal:
                getter = asyncio.create_task(sub.get())
                waiter = asyncio.create_task(record.done_event.wait())
                done, pending = await asyncio.wait(
                    {getter, waiter},
                    return_when=asyncio.FIRST_COMPLETED)
                for task in pending:
                    task.cancel()
                if getter in done:
                    writer.write(line(getter.result()))
                    await writer.drain()
            # flush whatever arrived before the terminal edge
            while not sub.empty():
                writer.write(line(sub.get_nowait()))
        finally:
            if sub in record.subscribers:
                record.subscribers.remove(sub)
    writer.write(line({"event": "end", "record": record.to_json()}))
    await writer.drain()


class ExperimentService:
    """The service: queue + workers + coalescing map + HTTP routes."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 workers: int = 2, queue_capacity: int = 64,
                 cache: Optional[ResultCache] = None,
                 worker_mode: str = "process",
                 shared_store: Optional[str] = None,
                 coordinator_url: Optional[str] = None,
                 advertise_host: Optional[str] = None):
        self.host = host
        self.port = port
        if shared_store is not None and not isinstance(cache,
                                                       TieredResultCache):
            # Promote the local store to the cluster tiering: memory
            # hot set in front, shared read-through store behind.
            local = cache if cache is not None else ResultCache()
            self.cache: Any = TieredResultCache(
                local, ResultCache(shared_store))
        else:
            self.cache = cache if cache is not None else ResultCache()
        shared_root = getattr(self.cache, "shared_root", None)
        self.queue = BoundedPriorityQueue(capacity=queue_capacity)
        self.tier = WorkerTier(workers=workers, cache_root=self.cache.root,
                               mode=worker_mode, shared_root=shared_root)
        self.metrics = ServiceMetrics()
        self.jobs: Dict[str, JobRecord] = {}       # id -> record (all)
        self.active: Dict[str, JobRecord] = {}     # key -> in-flight record
        self.draining = False
        self.coordinator_url = coordinator_url
        self.advertise_host = advertise_host
        self.registered = False        # last heartbeat reached coordinator
        self._job_ids = itertools.count(1)
        self._server: Optional[asyncio.base_events.Server] = None
        self._runners: List[asyncio.Task] = []
        self._heartbeat: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()
        self._runner_count = max(1, int(workers))

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self.tier.start()
        self._runners = [
            asyncio.create_task(self._runner(), name=f"serve-runner-{i}")
            for i in range(self._runner_count)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.coordinator_url:
            self._heartbeat = asyncio.create_task(
                self._register_loop(), name="serve-register")

    async def request_drain(self) -> None:
        """Graceful shutdown: refuse new work, finish accepted work."""
        if self.draining:
            return
        self.draining = True
        if self._heartbeat is not None:
            self._heartbeat.cancel()
        await self.queue.close()
        if self._runners:
            await asyncio.gather(*self._runners, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.tier.shutdown(wait=True)
        self._drained.set()

    # ------------------------------------------------------------------
    # cluster-worker registration

    def _advertised(self) -> Tuple[str, int]:
        host = self.advertise_host or self.host
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        return host, self.port

    async def _register_once(self) -> bool:
        """One registration heartbeat; ``True`` when the coordinator
        acknowledged."""
        parsed = urlparse(self.coordinator_url
                          if "//" in str(self.coordinator_url)
                          else f"http://{self.coordinator_url}")
        host, port = parsed.hostname or "127.0.0.1", parsed.port or 8786
        ad_host, ad_port = self._advertised()
        try:
            status, _doc = await http_fetch(
                host, port, "POST", "/v1/workers/register",
                body={"host": ad_host, "port": ad_port,
                      "workers": self.tier.workers},
                timeout=10.0)
        except FetchError:
            return False
        return status == 200

    async def _register_loop(self) -> None:
        """Register on start, then heartbeat forever.  The coordinator
        treats every beat as an idempotent upsert, so a worker that
        was evicted (crash, partition) rejoins the fleet simply by
        being heard from again."""
        while not self.draining:
            self.registered = await self._register_once()
            await asyncio.sleep(HEARTBEAT_INTERVAL_S)

    async def wait_drained(self) -> None:
        await self._drained.wait()

    # ------------------------------------------------------------------
    # admission

    def _new_record(self, spec: ExperimentSpec, source: str) -> JobRecord:
        job_id = f"j{next(self._job_ids):06d}"
        record = JobRecord(job_id, spec, source)
        self.jobs[job_id] = record
        return record

    def submit(self, spec: ExperimentSpec) -> Tuple[JobRecord, bool]:
        """Admit a spec: coalesce, answer from cache, or enqueue.

        Returns ``(record, created)`` where ``created`` is False when
        the submission attached to an in-flight twin.  Raises
        :class:`QueueFull`/:class:`QueueClosed` on refusal.
        """
        if self.draining:
            raise QueueClosed("service is draining")
        key = spec.key()

        # 1. Coalesce onto an in-flight twin (unless refresh demands a
        #    fresh execution *and* nothing identical is already queued
        #    -- a refresh twin still coalesces with a refresh in flight).
        twin = self.active.get(key)
        if twin is not None and not twin.terminal:
            twin.coalesced += 1
            self.metrics.coalesced(spec.kind, key)
            return twin, False

        # 2. Cache fast path: rebuild the result document from disk.
        hit = spec.cached_result(self.cache)
        if hit is not None:
            record = self._new_record(spec, "cache")
            record.status = "done"
            record.result = hit
            record.finished_at = record.submitted_at
            record.done_event.set()
            self.metrics.cache_hit(spec.kind, key)
            return record, True

        # 3. Enqueue (bounded: QueueFull propagates as HTTP 429).
        # The record is registered only after the queue accepts it: a
        # refused submission must not leak a phantom forever-"queued"
        # record into the job table (un-cancellable, never terminal --
        # a waiter that found it would poll for the rest of its life).
        record = JobRecord(f"j{next(self._job_ids):06d}", spec, "queued")
        retry_after = max(1.0, len(self.queue) * 0.5)
        self.queue.put_nowait(spec.priority, record, retry_after=retry_after)
        self.jobs[record.job_id] = record
        self.active[key] = record
        self.metrics.submitted(spec.kind, key)
        return record, True

    def cancel(self, record: JobRecord) -> bool:
        """Cancel a still-queued job; running jobs are not interrupted
        (worker processes are shared -- a SIGKILL would break the pool).

        Cancelling transitions *every* attached waiter: submissions
        that coalesced onto this record share it, so the one
        ``finish`` below is their terminal edge too -- event streams
        get ``finished`` + ``end``, pollers see ``cancelled``.  A
        "queued" record the queue no longer holds (it should not
        happen; defensive) is finished as cancelled rather than left
        in limbo answering 409 forever.
        """
        if record.terminal or record.status == "running":
            return False
        self.queue.remove(record)
        self.active.pop(record.key, None)
        record.finish("cancelled", error="cancelled while queued")
        self.metrics.finished(record.spec.describe(), record.key,
                              "cancelled", record.latency_s())
        return True

    # ------------------------------------------------------------------
    # execution

    def _ceiling(self, spec: ExperimentSpec) -> float:
        if spec.timeout is not None:
            base = spec.timeout * (1 + spec.retries)
            return base + TIMEOUT_GRACE_S
        return DEFAULT_JOB_CEILING_S

    async def _runner(self) -> None:
        """One consumer loop: queue -> worker tier -> record fan-out."""
        while True:
            try:
                record = await self.queue.get()
            except QueueClosed:
                return
            await self._execute(record)

    async def _execute(self, record: JobRecord) -> None:
        spec = record.spec
        record.status = "running"
        record.started_at = time.time()
        record.started_mono = time.monotonic()
        record.publish("started")
        self.metrics.started(spec.kind, record.key)
        loop = asyncio.get_running_loop()
        status, result, error = "failed", None, "unknown worker failure"
        try:
            future = self.tier.submit(spec)
            wrapped = asyncio.wrap_future(future, loop=loop)
            report = await asyncio.wait_for(wrapped, self._ceiling(spec))
            if report.get("ok"):
                status, result, error = "done", report.get("result"), None
            else:
                error = str(report.get("error"))
                status = ("timeout" if "JobTimeoutError" in error
                          else "failed")
        except asyncio.TimeoutError:
            status, error = "timeout", (
                f"server-side ceiling of {self._ceiling(spec):.0f}s exceeded")
        except Exception as exc:  # noqa: BLE001 -- keep the runner alive
            error = f"{type(exc).__name__}: {exc}"
        finally:
            self.active.pop(record.key, None)
            record.finish(status, result=result, error=error)
            self.metrics.finished(
                spec.describe(), record.key, status, record.latency_s())

    # ------------------------------------------------------------------
    # HTTP plumbing

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # request framing and response writing live in repro.serve.http,
    # shared with the cluster coordinator
    _read_request = staticmethod(read_request)
    _respond = staticmethod(respond)

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        parts = [p for p in path.split("?", 1)[0].split("/") if p]

        if method == "GET" and parts == ["healthz"]:
            await self._respond(writer, 200, self._healthz())
            return
        if method == "GET" and parts == ["metrics"]:
            await self._respond(writer, 200, self._metrics_doc())
            return
        if parts[:2] != ["v1", "jobs"]:
            await self._respond(writer, 404, {"error": f"no route {path}"})
            return

        if method == "POST" and len(parts) == 2:
            query = parse_qs(urlparse(path).query)
            forwarded = query.get("forwarded", ["0"])[0] in ("1", "true")
            await self._post_job(body, writer, forwarded=forwarded)
            return
        if method == "GET" and len(parts) == 2:
            listing = [r.to_json() for r in self.jobs.values()]
            await self._respond(writer, 200, {"jobs": listing})
            return

        record = self.jobs.get(parts[2]) if len(parts) >= 3 else None
        if record is None:
            await self._respond(writer, 404,
                                {"error": f"unknown job {parts[2:3]}"})
            return

        if method == "GET" and len(parts) == 3:
            await self._respond(writer, 200, record.to_json())
        elif method == "DELETE" and len(parts) == 3:
            if self.cancel(record):
                await self._respond(writer, 200, record.to_json())
            else:
                await self._respond(
                    writer, 409,
                    {"error": f"job is {record.status}; only queued "
                              f"jobs can be cancelled",
                     "record": record.to_json()})
        elif method == "GET" and len(parts) == 4 and parts[3] == "events":
            await self._stream_events(record, writer)
        elif (method == "GET" and len(parts) == 5
              and parts[3] == "artifacts"):
            await self._get_artifact(record, parts[4], writer)
        else:
            await self._respond(writer, 405,
                                {"error": f"{method} not allowed on {path}"})

    # ------------------------------------------------------------------
    # route bodies

    async def _post_job(self, body: bytes, writer: asyncio.StreamWriter,
                        forwarded: bool = False) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            await self._respond(writer, 400, {"error": "body is not JSON"})
            return
        try:
            spec = ExperimentSpec.from_json(doc)
        except SpecError as exc:
            self.metrics.rejected("invalid")
            await self._respond(writer, 400, {"error": str(exc)})
            return
        if forwarded:
            self.metrics.forwarded(spec.kind, spec.key())
        try:
            record, created = self.submit(spec)
        except QueueFull as exc:
            self.metrics.rejected("backpressure")
            await self._respond(
                writer, 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers=(("Retry-After",
                                str(int(exc.retry_after + 0.5)) or "1"),))
            return
        except QueueClosed:
            self.metrics.rejected("draining")
            await self._respond(
                writer, 503,
                {"error": "service is draining; not accepting new jobs"})
            return
        if created and record.source == "queued":
            await self.queue.notify()
        status = 200 if record.terminal else 202
        await self._respond(writer, status,
                            {"coalesced": not created, **record.to_json()})

    # shared with the cluster coordinator (same record type, same
    # NDJSON contract)
    _stream_events = staticmethod(stream_record_events)

    async def _get_artifact(self, record: JobRecord, name: str,
                            writer: asyncio.StreamWriter) -> None:
        try:
            blob = self.cache.get_artifact(record.key, name)
        except ValueError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        if blob is None:
            await self._respond(
                writer, 404,
                {"error": f"no artifact {name!r} for job {record.job_id}"})
            return
        await self._respond(writer, 200, blob,
                            content_type="application/octet-stream")

    # ------------------------------------------------------------------
    # documents

    def _healthz(self) -> Dict[str, Any]:
        status = "draining" if self.draining else "ok"
        doc: Dict[str, Any] = {
            "status": status,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "workers": self.tier.workers,
            "worker_mode": self.tier.mode,
            "worker_degraded": self.tier.degraded,
            "jobs_tracked": len(self.jobs),
            "in_flight": len(self.active),
        }
        if self.coordinator_url is not None:
            doc["coordinator"] = self.coordinator_url
            doc["registered"] = self.registered
        shared_root = getattr(self.cache, "shared_root", None)
        if shared_root is not None:
            doc["shared_store"] = str(shared_root)
            doc["cache_tier_hits"] = dict(self.cache.tier_hits)
        return doc

    def _metrics_doc(self) -> Dict[str, Any]:
        return self.metrics.to_json(
            queue_depth=len(self.queue),
            queue_capacity=self.queue.capacity,
            in_flight=len(self.active),
            draining=self.draining,
            worker_mode=self.tier.mode,
        )


async def serve_forever(service: ExperimentService) -> None:
    """Run until drained; installs SIGTERM/SIGINT drain handlers."""
    await service.start()
    loop = asyncio.get_running_loop()

    def _drain() -> None:
        asyncio.ensure_future(service.request_drain())

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _drain)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or unsupported platform
    await service.wait_drained()


def run_server(host: str = "127.0.0.1", port: int = 8787, workers: int = 2,
               queue_capacity: int = 64,
               cache: Optional[ResultCache] = None,
               worker_mode: str = "process",
               shared_store: Optional[str] = None,
               coordinator_url: Optional[str] = None,
               advertise_host: Optional[str] = None) -> None:
    """Blocking entry point (the ``python -m repro serve`` verb)."""
    service = ExperimentService(host=host, port=port, workers=workers,
                                queue_capacity=queue_capacity, cache=cache,
                                worker_mode=worker_mode,
                                shared_store=shared_store,
                                coordinator_url=coordinator_url,
                                advertise_host=advertise_host)
    asyncio.run(serve_forever(service))
