"""Validated experiment specs: the unit of work ``POST /v1/jobs`` accepts.

An :class:`ExperimentSpec` is the serving layer's job description --
a JSON document naming one of four experiment kinds plus everything
that determines its output:

``job``
    One registered harness callable (``fn``, ``params``): a Table I/II
    row, a characterization point, a workload run, a ``debug.*``
    synthetic.  Its key **is** the harness job's schema-versioned
    SHA-256 content hash, so server-side coalescing, the on-disk
    :class:`~repro.harness.cache.ResultCache` and the batch CLI all
    speak the same key space.
``sweep``
    A parameter grid (``fn``, ``axes``, ``base``) expanded via
    :class:`~repro.harness.sweep.Sweep`; results come back as a flat
    list in grid order.  The key hashes the ordered per-job keys.
``lint``
    A :mod:`repro.lint` run over named targets.  Lint reads the source
    tree, which the content hash cannot see -- so lint specs coalesce
    in flight but are never answered from the result cache.
``trace``
    A :func:`repro.observe.capture.capture_trace` capture whose event
    stream, Chrome trace and heatmaps are stored as named cache
    artifacts under the spec key and served back via
    ``GET /v1/jobs/<id>/artifacts/<name>``.

Validation happens at admission (:meth:`ExperimentSpec.from_json`
raises :class:`SpecError` with a human-readable reason -> HTTP 400);
execution happens in a worker process (:meth:`ExperimentSpec.execute`)
through the same :func:`repro.harness.executor.run_jobs` path the
batch CLI uses, inheriting its per-job SIGALRM timeouts and bounded
retries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.cpu.config import CPUConfig
from repro.errors import ConfigError
from repro.harness.job import CACHE_SCHEMA_VERSION, Job, canonical_json, resolve
from repro.harness.sweep import Sweep

#: Version of the spec document / spec-key schema.  Folded into every
#: non-``job`` spec key next to :data:`CACHE_SCHEMA_VERSION`.
SPEC_SCHEMA_VERSION = 1

#: Accepted experiment kinds.
KINDS = ("job", "sweep", "lint", "trace")

#: CPU presets a spec may name (classmethod constructors on CPUConfig).
CPU_PRESETS = ("skylake", "zen", "zen2", "sunny_cove")

#: Stepping backends a spec may name (see :mod:`repro.cpu.engine`).
#: The engine is folded into the spec's CPUConfig, so it participates
#: in the harness job keys (cache schema v3): reference and replay
#: results coalesce and cache separately.
ENGINE_CHOICES = ("reference", "replay")

#: Hard ceiling on sweep grid size per spec (one spec is one queue
#: slot; a bigger study should be split into several specs).
MAX_SWEEP_JOBS = 4096

#: Artifact names a ``trace`` spec stores (heatmap count varies).
TRACE_RESULT_FN = "serve.trace"


class SpecError(ValueError):
    """A submitted spec is malformed or names unknown entities."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SpecError(message)


@dataclass
class ExperimentSpec:
    """One validated unit of serveable work."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    cpu: str = "skylake"
    engine: str = "reference"
    seed: int = 0
    priority: int = 0
    timeout: Optional[float] = None
    retries: int = 1
    refresh: bool = False

    _key: Optional[str] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # construction / validation

    @classmethod
    def from_json(cls, doc: Any) -> "ExperimentSpec":
        """Build and fully validate a spec from a JSON document."""
        _require(isinstance(doc, dict), "spec must be a JSON object")
        known = {"kind", "params", "cpu", "engine", "seed", "priority",
                 "timeout", "retries", "refresh"}
        unknown = sorted(set(doc) - known)
        _require(not unknown,
                 f"unknown spec field(s) {unknown}; known: {sorted(known)}")
        kind = doc.get("kind")
        _require(kind in KINDS, f"kind must be one of {KINDS}, got {kind!r}")
        params = doc.get("params", {})
        _require(isinstance(params, dict), "params must be an object")
        cpu = doc.get("cpu", "skylake")
        _require(cpu in CPU_PRESETS,
                 f"cpu must be one of {CPU_PRESETS}, got {cpu!r}")
        engine = doc.get("engine", "reference")
        _require(engine in ENGINE_CHOICES,
                 f"engine must be one of {ENGINE_CHOICES}, got {engine!r}")
        seed = doc.get("seed", 0)
        _require(isinstance(seed, int) and not isinstance(seed, bool),
                 "seed must be an integer")
        priority = doc.get("priority", 0)
        _require(isinstance(priority, int) and not isinstance(priority, bool)
                 and 0 <= priority <= 9, "priority must be an integer in 0..9")
        timeout = doc.get("timeout")
        _require(timeout is None
                 or (isinstance(timeout, (int, float))
                     and not isinstance(timeout, bool) and timeout > 0),
                 "timeout must be a positive number of seconds")
        retries = doc.get("retries", 1)
        _require(isinstance(retries, int) and not isinstance(retries, bool)
                 and 0 <= retries <= 10, "retries must be an integer in 0..10")
        refresh = doc.get("refresh", False)
        _require(isinstance(refresh, bool), "refresh must be a boolean")
        spec = cls(kind=kind, params=dict(params), cpu=cpu, engine=engine,
                   seed=seed, priority=priority,
                   timeout=None if timeout is None else float(timeout),
                   retries=retries, refresh=refresh)
        spec.validate()
        return spec

    def validate(self) -> None:
        """Kind-specific validation; raises :class:`SpecError`."""
        check = getattr(self, f"_validate_{self.kind}", None)
        _require(check is not None,
                 f"kind must be one of {KINDS}, got {self.kind!r}")
        check()

    def _validate_job(self) -> None:
        fn = self.params.get("fn")
        _require(isinstance(fn, str) and fn, "job spec needs a 'fn' string")
        try:
            resolve(fn)
        except ConfigError as exc:
            raise SpecError(str(exc)) from None
        fn_params = self.params.get("params", {})
        _require(isinstance(fn_params, dict), "'params' must be an object")
        extra = sorted(set(self.params) - {"fn", "params"})
        _require(not extra, f"unknown job spec field(s) {extra}")
        try:
            canonical_json(fn_params)
        except TypeError as exc:
            raise SpecError(str(exc)) from None
        self._probe_keys()

    def _validate_sweep(self) -> None:
        fn = self.params.get("fn")
        _require(isinstance(fn, str) and fn, "sweep spec needs a 'fn' string")
        try:
            resolve(fn)
        except ConfigError as exc:
            raise SpecError(str(exc)) from None
        axes = self.params.get("axes")
        _require(isinstance(axes, dict) and axes,
                 "sweep spec needs a non-empty 'axes' object")
        total = 1
        for name, values in axes.items():
            _require(isinstance(values, list) and values,
                     f"axis {name!r} must be a non-empty list")
            total *= len(values)
        _require(total <= MAX_SWEEP_JOBS,
                 f"sweep expands to {total} jobs (limit {MAX_SWEEP_JOBS}); "
                 f"split it into smaller specs")
        base = self.params.get("base", {})
        _require(isinstance(base, dict), "'base' must be an object")
        extra = sorted(set(self.params) - {"fn", "axes", "base"})
        _require(not extra, f"unknown sweep spec field(s) {extra}")
        try:
            canonical_json({"axes": axes, "base": base})
        except TypeError as exc:
            raise SpecError(str(exc)) from None
        self._probe_keys()

    def _validate_lint(self) -> None:
        from repro.lint.runner import TARGETS

        targets = self.params.get("targets")
        if targets is not None:
            _require(isinstance(targets, list)
                     and all(isinstance(t, str) for t in targets),
                     "'targets' must be a list of target names")
            unknown = sorted(set(targets) - set(TARGETS))
            _require(not unknown,
                     f"unknown lint target(s) {unknown}; "
                     f"known: {sorted(TARGETS)}")
        cross = self.params.get("cross_check", False)
        _require(isinstance(cross, bool), "'cross_check' must be a boolean")
        taint = self.params.get("taint", False)
        _require(isinstance(taint, bool), "'taint' must be a boolean")
        extra = sorted(set(self.params) - {"targets", "cross_check", "taint"})
        _require(not extra, f"unknown lint spec field(s) {extra}")

    def _validate_trace(self) -> None:
        from repro.observe.capture import TRACE_TARGETS

        experiment = self.params.get("experiment")
        _require(experiment in TRACE_TARGETS,
                 f"trace experiment must be one of "
                 f"{sorted(TRACE_TARGETS)}, got {experiment!r}")
        extra = sorted(set(self.params) - {"experiment"})
        _require(not extra, f"unknown trace spec field(s) {extra}")

    def _probe_keys(self) -> None:
        """Force job-key computation so program-builder failures (bad
        parameter shapes) surface at admission, not in a worker."""
        try:
            self.key()
        except SpecError:
            raise
        except Exception as exc:  # noqa: BLE001 -- builder code is arbitrary
            raise SpecError(
                f"spec parameters rejected by {self.params.get('fn')!r}: "
                f"{type(exc).__name__}: {exc}"
            ) from None

    # ------------------------------------------------------------------
    # identity

    def config(self) -> CPUConfig:
        return getattr(CPUConfig, self.cpu)(engine=self.engine)

    def jobs(self) -> List[Job]:
        """The harness jobs this spec expands to (``job``/``sweep``)."""
        if self.kind == "job":
            return [Job(self.params["fn"], config=self.config(),
                        params=dict(self.params.get("params", {})),
                        seed=self.seed)]
        if self.kind == "sweep":
            return Sweep(self.params["fn"],
                         axes=self.params["axes"],
                         base=self.params.get("base", {}),
                         config=self.config(),
                         seed=self.seed).jobs()
        raise SpecError(f"{self.kind} specs do not expand to harness jobs")

    def key(self) -> str:
        """Stable content hash identifying this spec's result.

        ``job`` specs reuse the harness job key verbatim -- the same
        schema-versioned SHA-256 the batch CLI caches under -- so the
        coalescing map and the result cache are shared with every
        other consumer of the harness.
        """
        if self._key is None:
            if self.kind == "job":
                self._key = self.jobs()[0].key()
            else:
                payload: Dict[str, Any] = {
                    "spec_schema": SPEC_SCHEMA_VERSION,
                    "schema": CACHE_SCHEMA_VERSION,
                    "kind": self.kind,
                    "cpu": self.cpu,
                    "seed": self.seed,
                }
                if self.kind == "sweep":
                    payload["jobs"] = [job.key() for job in self.jobs()]
                else:
                    payload["params"] = dict(self.params)
                digest = hashlib.sha256(canonical_json(payload))
                self._key = digest.hexdigest()
        return self._key

    @property
    def cacheable(self) -> bool:
        """Lint reads the live source tree, which no content hash over
        the spec can capture -- everything else is a pure function of
        the spec."""
        return self.kind != "lint"

    def describe(self) -> str:
        """Short human label for logs and latency-histogram bucketing."""
        if self.kind == "job":
            return f"job:{self.params['fn']}"
        if self.kind == "sweep":
            return f"sweep:{self.params['fn']}"
        if self.kind == "trace":
            return f"trace:{self.params['experiment']}"
        targets = self.params.get("targets")
        return f"lint:{'all' if targets is None else ','.join(targets)}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (round-trips through ``from_json``)."""
        doc = asdict(self)
        doc.pop("_key")
        return doc

    # ------------------------------------------------------------------
    # execution (worker-process side)

    def execute(self, cache) -> Dict[str, Any]:
        """Run the spec to completion; returns a JSON-able result
        document.  Raises on failure (the worker entry flattens).

        ``job``/``sweep`` delegate to
        :func:`repro.harness.executor.run_jobs` with ``workers=1`` --
        serial inside an already-parallel worker process, with the
        harness's own SIGALRM deadline and bounded-retry machinery
        intact (worker processes run jobs on their main thread, where
        ``SIGALRM`` is legal).
        """
        if self.kind in ("job", "sweep"):
            return self._execute_jobs(cache)
        if self.kind == "lint":
            return self._execute_lint()
        return self._execute_trace(cache)

    def _execute_jobs(self, cache) -> Dict[str, Any]:
        from repro.harness.executor import run_jobs

        jobs = self.jobs()
        outcomes, summary = run_jobs(
            jobs, workers=1, cache=cache, timeout=self.timeout,
            retries=self.retries, refresh=self.refresh,
        )
        failures = [o for o in outcomes if not o.ok]
        if failures:
            first = failures[0]
            raise RuntimeError(
                f"{len(failures)}/{len(jobs)} job(s) failed; first: "
                f"{first.job.label}: {first.error}"
            )
        doc: Dict[str, Any] = {
            "kind": self.kind,
            "executed": summary.executed,
            "cached": summary.cached,
            "retries": summary.retries,
        }
        if self.kind == "job":
            doc["result"] = outcomes[0].result
            doc["attempts"] = outcomes[0].attempts
        else:
            doc["results"] = [o.result for o in outcomes]
        return doc

    def _execute_lint(self) -> Dict[str, Any]:
        from repro.harness.executor import _deadline
        from repro.lint.runner import run_lint

        with _deadline(self.timeout):
            run = run_lint(self.params.get("targets"),
                           cross=self.params.get("cross_check", False),
                           taint=self.params.get("taint", False))
        return {"kind": "lint", "ok": run.ok, "report": run.as_dict()}

    def _execute_trace(self, cache) -> Dict[str, Any]:
        from repro.harness.executor import _deadline
        from repro.observe import chrome_trace, validate_chrome_trace
        from repro.observe.capture import capture_trace

        experiment = self.params["experiment"]
        with _deadline(self.timeout):
            recorder, snaps = capture_trace(experiment)
        chrome = chrome_trace(recorder.events,
                              process_name=f"repro:{experiment}")
        problems = validate_chrome_trace(chrome)
        if problems:
            raise RuntimeError(
                f"chrome trace export invalid: {problems[:3]}"
            )
        key = self.key()
        artifacts = []
        if cache is not None:
            cache.put_artifact(key, "events.json",
                               json.dumps(recorder.as_records()))
            cache.put_artifact(key, "chrome.json", json.dumps(chrome))
            artifacts = ["events.json", "chrome.json"]
            for i, snap in enumerate(snaps):
                name = f"heatmap-{i}.json"
                cache.put_artifact(key, name, json.dumps(snap.to_json()))
                artifacts.append(name)
        doc = {
            "kind": "trace",
            "experiment": experiment,
            "events": recorder.counts(),
            "uops_by_source": recorder.uops_by_source(),
            "artifacts": artifacts,
        }
        if cache is not None:
            # One aggregate record under the spec key: lets the server
            # answer a repeat submission without touching the queue.
            cache.put(key, TRACE_RESULT_FN, doc)
        return doc

    # ------------------------------------------------------------------
    # server-side cache fast path

    def cached_result(self, cache) -> Optional[Dict[str, Any]]:
        """Rebuild the full result document from the store, or ``None``
        when any constituent is missing (-> enqueue normally).

        This is the warm-serving fast path: an answer here costs a few
        cache reads instead of a queue slot and a worker dispatch.
        """
        if cache is None or not self.cacheable or self.refresh:
            return None
        if self.kind == "job":
            hit = cache.get(self.jobs()[0].key())
            if hit is None:
                return None
            return {"kind": "job", "executed": 0, "cached": 1,
                    "retries": 0, "result": hit, "attempts": 0}
        if self.kind == "sweep":
            results = []
            for job in self.jobs():
                hit = cache.get(job.key())
                if hit is None:
                    return None
                results.append(hit)
            return {"kind": "sweep", "executed": 0, "cached": len(results),
                    "retries": 0, "results": results}
        # trace: the aggregate record stored by _execute_trace
        return cache.get(self.key())
