"""Ablations of the design choices DESIGN.md calls out:

- replacement policy: the hotness wear-down policy vs plain LRU
  (LRU destroys the Figure 5 diagonal -- a single conflicting access
  evicts, so retention no longer encodes access counts);
- sharing policy: static partitioning closes the SMT channel that
  competitive sharing leaves open;
- mitigations: flush-at-crossing and privilege partitioning close the
  user/kernel channel, at a measurable performance cost, while
  variant-1 sails through privilege partitioning.
"""

from benchmarks.conftest import banner, run_once
from repro.core import characterize
from repro.core.mitigations import (
    evaluate_crossdomain_mitigations,
    variant1_under_partitioning,
)
from repro.core.smtchannel import SMTChannel, SMTChannelParams
from repro.cpu.config import CPUConfig


def test_ablation_replacement_policy(benchmark):
    """The policies' signatures differ in *pressure sensitivity*: under
    the hotness policy a hot resident loop degrades gradually as the
    evicting loop's iteration count grows (retention encodes a count);
    under LRU a single evicting pass already evicts everything, so the
    retention curve is flat in E (retention encodes one bit)."""

    def measure():
        out = {}
        for policy in ("hotness", "lru"):
            config = CPUConfig.skylake(uop_cache_policy=policy)
            out[policy] = characterize.measure_replacement(
                config,
                main_iters=(8,),
                evict_iters=(1, 4, 8, 12),
                rounds=10,
            )
        return out

    results = run_once(benchmark, measure)
    banner("Ablation -- hotness vs LRU replacement "
           "(M=8 row of Figure 5 under eviction pressure E)")
    for policy, r in results.items():
        cells = "  ".join(f"E={e}:{r.cell(8, e):5.1f}"
                          for e in r.evict_iters)
        print(f"  {policy:8s}: {cells}")
    hot = results["hotness"]
    lru = results["lru"]
    hot_range = hot.cell(8, 1) - hot.cell(8, 12)
    lru_range = lru.cell(8, 1) - lru.cell(8, 12)
    # hotness leaks the access count: retention falls with pressure
    assert hot_range > 20
    # LRU leaks a single bit: pressure beyond one pass changes nothing
    assert abs(lru_range) < 5
    benchmark.extra_info["hotness_range"] = hot_range
    benchmark.extra_info["lru_range"] = lru_range


def test_ablation_smt_sharing(benchmark):
    def measure():
        zen = SMTChannel(SMTChannelParams(calibration_rounds=4))
        intel = SMTChannel(
            SMTChannelParams(calibration_rounds=4),
            config=CPUConfig.skylake(),
        )
        return zen.calibrate().delta, intel.calibrate().delta

    zen_delta, intel_delta = run_once(benchmark, measure)
    banner("Ablation -- competitive vs static SMT sharing")
    print(f"  Zen (competitive) cross-thread signal:   {zen_delta:8.1f} cyc")
    print(f"  Skylake (static) cross-thread signal:    {intel_delta:8.1f} cyc")
    assert zen_delta > 200
    assert abs(intel_delta) < 50
    benchmark.extra_info["zen_delta"] = zen_delta
    benchmark.extra_info["intel_delta"] = intel_delta


def test_ablation_mitigations(benchmark):
    def measure():
        outcomes = evaluate_crossdomain_mitigations(b"\xa5")
        v1 = variant1_under_partitioning(b"\x5a")
        return outcomes, v1

    outcomes, (v1_base, v1_part) = run_once(benchmark, measure)
    banner("Ablation -- Section VIII mitigations vs the channels")
    for o in outcomes:
        print(f"  {o.name:22s} signal={o.signal_delta:8.1f} "
              f"err={o.error_rate * 100:5.1f}% closed={o.channel_closed} "
              f"cycles={o.kernel_cycles}")
    print(f"  variant-1 byte accuracy: baseline={v1_base:.2f}, "
          f"privilege-partitioned={v1_part:.2f} (paper: not mitigated)")
    by_name = {o.name: o for o in outcomes}
    assert not by_name["baseline"].channel_closed
    assert by_name["flush-on-crossing"].channel_closed
    assert by_name["privilege-partition"].channel_closed
    assert by_name["flush-on-crossing"].kernel_cycles > \
        by_name["baseline"].kernel_cycles
    assert v1_base == 1.0
    assert v1_part == 1.0  # partitioning does NOT stop variant-1


def test_ablation_invisible_speculation(benchmark):
    """Section VII as an executable claim: an invisible-speculation
    defense closes the data-cache disclosure (classic Spectre-v1) and
    leaves the front-end disclosure wide open."""
    from repro.core.transient import ClassicSpectreV1, UopCacheSpectreV1

    def measure():
        invisible = CPUConfig.skylake(invisible_speculation=True)
        classic = ClassicSpectreV1(secret=b"\xa5\x3c",
                                   config=invisible).leak()
        uop = UopCacheSpectreV1(secret=b"\xa5\x3c", config=invisible,
                                deep_window=True).leak()
        return classic, uop

    classic, uop = run_once(benchmark, measure)
    banner("Ablation -- invisible speculation (Section VII)")
    print(f"  classic Spectre-v1 accuracy:  {classic.byte_accuracy * 100:.0f}%"
          " (data-cache side closed)")
    print(f"  uop-cache variant-1 accuracy: {uop.byte_accuracy * 100:.0f}%"
          " (front-end side wide open)")
    assert classic.byte_accuracy == 0.0
    assert uop.byte_accuracy == 1.0
    benchmark.extra_info["classic_acc"] = classic.byte_accuracy
    benchmark.extra_info["uop_acc"] = uop.byte_accuracy
