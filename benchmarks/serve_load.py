"""Closed-loop load generator for the experiment service.

Boots an in-process server (the same :class:`ServerThread` the tests
use), then drives it with 1 / 8 / 32 concurrent closed-loop clients --
each client submits a job, waits for the terminal record, submits the
next -- and reports jobs/sec with exact client-side p50/p99 latency,
cold cache (every spec unique, every job executes) versus warm cache
(the identical specs resubmitted, every job answered from the result
store).

The warm phase must be dramatically cheaper: serving a cached result
is a couple of file reads on the event loop instead of a queue slot,
a worker dispatch and the experiment itself.  The acceptance bar is
**warm p50 at least 10x lower than cold p50** at every concurrency
level.

A second section measures the **cluster tier**: the same closed-loop
clients drive a coordinator fronting 1 / 2 / 4 single-process workers
(:class:`~repro.serve.testing.ClusterThread`), all unique jobs, so
throughput should scale with fleet size -- the routing, forwarding
and shared-store plumbing is what is under test.  The bar there is
the 4-worker fleet clearing at least 1.5x the 1-worker fleet's
jobs/sec (ideal is ~4x; the slack absorbs forward/poll overhead).

Run it directly (not via pytest)::

    PYTHONPATH=src python benchmarks/serve_load.py [--fast] [--json out.json]

The default workload is ``debug.sleep`` (deterministic service time,
so the cold/warm contrast measures the serving layer, not simulator
noise); ``--spin`` switches to a CPU-bound workload.
"""

import argparse
import json
import statistics
import sys
import threading
import time

from repro.harness.cache import ResultCache
from repro.serve.testing import ClusterThread, ServerThread

CLIENT_LEVELS = (1, 8, 32)

FLEET_LEVELS = (1, 2, 4)


def _percentile(samples, p):
    """Exact percentile over recorded client-side latencies."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(p * len(ordered) + 0.5) - 1))
    return ordered[rank]


def _spec_for(args, token):
    if args.spin:
        return {"kind": "job",
                "params": {"fn": "debug.spin",
                           "params": {"n": args.spin_n, "token": token}}}
    return {"kind": "job",
            "params": {"fn": "debug.sleep",
                       "params": {"seconds": args.sleep_seconds,
                                  "token": token}}}


def _drive(server, args, clients, tokens):
    """Closed loop: ``clients`` threads share the ``tokens`` work list;
    returns (elapsed_seconds, per-job latencies in ms)."""
    latencies = []
    lock = threading.Lock()
    cursor = iter(list(tokens))
    errors = []

    def loop():
        client = server.client()
        while True:
            with lock:
                token = next(cursor, None)
            if token is None:
                return
            t0 = time.monotonic()
            try:
                record = client.submit_and_wait(_spec_for(args, token),
                                                timeout=600)
            except Exception as exc:  # noqa: BLE001 -- collected
                errors.append(exc)
                return
            dt = (time.monotonic() - t0) * 1000.0
            if record["status"] != "done":
                errors.append(RuntimeError(record.get("error")))
                return
            with lock:
                latencies.append(dt)

    start = time.monotonic()
    threads = [threading.Thread(target=loop) for _ in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    if errors:
        raise SystemExit(f"load phase failed: {errors[0]}")
    return elapsed, latencies


def run_cluster(args):
    """1/2/4-worker fleet scaling: all-unique jobs through a
    coordinator, jobs/sec per fleet size."""
    entries = []
    for fleet in FLEET_LEVELS:
        with ClusterThread(workers=fleet, worker_processes=1,
                           worker_mode="thread") as cluster:
            jobs = args.cluster_jobs
            tokens = [f"fleet{fleet}-{i}" for i in range(jobs)]
            elapsed, lat = _drive(cluster, args, args.cluster_clients,
                                  tokens)
            counters = cluster.client().metrics()["counters"]
        entry = {
            "workers": fleet,
            "clients": args.cluster_clients,
            "jobs": jobs,
            "seconds": round(elapsed, 4),
            "jobs_per_sec": round(jobs / elapsed, 2),
            "p50_ms": round(_percentile(lat, 0.50), 3),
            "p99_ms": round(_percentile(lat, 0.99), 3),
            "mean_ms": round(statistics.fmean(lat), 3),
            "coordinator_executed": counters["executed"],
        }
        entries.append(entry)
        print(f"  fleet w={fleet}: {entry['jobs_per_sec']:9.2f} jobs/s  "
              f"p50={entry['p50_ms']:9.3f}ms  "
              f"p99={entry['p99_ms']:9.3f}ms  "
              f"executed={entry['coordinator_executed']} "
              f"({jobs} jobs in {entry['seconds']:.2f}s)")
    return entries


def run(args):
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache(
        f"/tmp/repro-serve-load-{int(time.time() * 1e6)}")
    cache.clear()
    phases = []
    with ServerThread(cache=cache, workers=args.workers,
                      queue_capacity=256) as server:
        for clients in CLIENT_LEVELS:
            jobs = max(clients * args.jobs_per_client, 4)
            tokens = [f"load-c{clients}-{i}" for i in range(jobs)]
            for phase in ("cold", "warm"):
                elapsed, lat = _drive(server, args, clients, tokens)
                entry = {
                    "phase": phase,
                    "clients": clients,
                    "jobs": jobs,
                    "seconds": round(elapsed, 4),
                    "jobs_per_sec": round(jobs / elapsed, 2),
                    "p50_ms": round(_percentile(lat, 0.50), 3),
                    "p99_ms": round(_percentile(lat, 0.99), 3),
                    "mean_ms": round(statistics.fmean(lat), 3),
                }
                phases.append(entry)
                print(f"  {phase:4s} c={clients:2d}: "
                      f"{entry['jobs_per_sec']:9.2f} jobs/s  "
                      f"p50={entry['p50_ms']:9.3f}ms  "
                      f"p99={entry['p99_ms']:9.3f}ms  "
                      f"({jobs} jobs in {entry['seconds']:.2f}s)")
        metrics = server.client().metrics()

    speedups = {}
    for clients in CLIENT_LEVELS:
        cold = next(p for p in phases
                    if p["phase"] == "cold" and p["clients"] == clients)
        warm = next(p for p in phases
                    if p["phase"] == "warm" and p["clients"] == clients)
        speedups[str(clients)] = round(
            cold["p50_ms"] / max(warm["p50_ms"], 1e-6), 1)

    doc = {
        "benchmark": "serve_load",
        "workload": "debug.spin" if args.spin else "debug.sleep",
        "config": {
            "workers": args.workers,
            "jobs_per_client": args.jobs_per_client,
            "sleep_seconds": args.sleep_seconds,
            "spin_n": args.spin_n,
            "cluster_jobs": args.cluster_jobs,
            "cluster_clients": args.cluster_clients,
        },
        "phases": phases,
        "warm_p50_speedup_by_clients": speedups,
        "server_counters": metrics["counters"],
    }
    print(f"\n  warm p50 speedup by concurrency: {speedups}")

    scaling = None
    if not args.no_cluster:
        print(f"\nserve_load: cluster scaling, fleets {FLEET_LEVELS} "
              f"({args.cluster_jobs} unique jobs, "
              f"{args.cluster_clients} clients)")
        entries = run_cluster(args)
        doc["cluster_scaling"] = entries
        scaling = round(entries[-1]["jobs_per_sec"]
                        / max(entries[0]["jobs_per_sec"], 1e-6), 2)
        doc["cluster_speedup_4v1"] = scaling
        print(f"\n  cluster 4-vs-1 worker speedup: {scaling}x")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {args.json}")

    floor = min(speedups.values())
    assert floor >= 10.0, (
        f"warm-cache p50 must be >= 10x lower than cold at every "
        f"concurrency level; worst was {floor:.1f}x"
    )
    print(f"  PASS: warm p50 >= 10x lower than cold "
          f"(worst level: {floor:.1f}x)")
    if scaling is not None:
        assert scaling >= 1.5, (
            f"4-worker fleet must clear >= 1.5x the 1-worker fleet's "
            f"throughput; measured {scaling}x"
        )
        print(f"  PASS: 4-worker fleet >= 1.5x the 1-worker fleet "
              f"({scaling}x)")
    return doc


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--jobs-per-client", type=int, default=4,
                        help="closed-loop jobs each client issues per phase")
    parser.add_argument("--sleep-seconds", type=float, default=0.15,
                        help="service time of the default workload")
    parser.add_argument("--spin", action="store_true",
                        help="CPU-bound workload instead of sleep")
    parser.add_argument("--spin-n", type=int, default=2_000_000)
    parser.add_argument("--fast", action="store_true",
                        help="smoke-size run (shorter jobs, fewer per client)")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--cluster-jobs", type=int, default=24,
                        help="unique jobs per fleet-scaling run")
    parser.add_argument("--cluster-clients", type=int, default=8,
                        help="closed-loop clients driving the coordinator")
    parser.add_argument("--no-cluster", action="store_true",
                        help="skip the 1/2/4-worker fleet scaling section")
    args = parser.parse_args(argv)
    if args.fast:
        args.jobs_per_client = 2
        args.sleep_seconds = 0.05
        args.spin_n = 200_000
        args.cluster_jobs = 12
    print(f"serve_load: closed-loop clients {CLIENT_LEVELS}, "
          f"{args.workers} workers, "
          f"workload {'spin' if args.spin else 'sleep'}")
    run(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
