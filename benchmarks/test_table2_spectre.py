"""Table II: tracing Spectre variants with performance counters.

Paper result (leaking the same secret):

    Spectre (original)   1.2046s  16.4M LLC refs  11.0M LLC misses  5.3M uop-penalty cycles
    Spectre (uop cache)  0.4591s   3.8M LLC refs   3.8M LLC misses 74.7M uop-penalty cycles

Shape: the micro-op cache variant is ~2.6x faster, makes ~5x/3x fewer
LLC references/misses, and shifts the timing signal into the micro-op
cache miss penalty (~15x more penalty cycles).
"""

from benchmarks.conftest import banner, run_once
from repro.core.report import table2


def test_table2_spectre_comparison(benchmark):
    rows = run_once(benchmark, lambda: table2(secret=b"\xa5\x3c\x5a\xc3"))
    banner("Table II -- Spectre-v1 vs micro-op cache Spectre (simulated)")
    print(f"  {'Attack':24s} {'Time':>11s} {'LLC refs':>12s} "
          f"{'LLC miss':>12s} {'uop penalty':>14s} {'Acc':>7s}")
    for row in rows:
        print("  " + row.format())

    classic = next(r for r in rows if "original" in r.attack)
    uop = next(r for r in rows if "uop" in r.attack)

    assert classic.byte_accuracy == 1.0
    assert uop.byte_accuracy == 1.0
    speedup = classic.seconds / uop.seconds
    llc_ratio = classic.llc_references / max(uop.llc_references, 1)
    penalty_ratio = uop.uop_cache_penalty_cycles / max(
        classic.uop_cache_penalty_cycles, 1
    )
    print(f"  speedup: {speedup:.2f}x (paper: 2.6x)")
    print(f"  LLC reference reduction: {llc_ratio:.1f}x (paper: ~5x)")
    print(f"  uop-cache penalty increase: {penalty_ratio:.1f}x (paper: ~15x)")
    assert speedup > 1.5
    assert llc_ratio > 3.0
    assert penalty_ratio > 5.0
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["llc_ratio"] = llc_ratio
    benchmark.extra_info["penalty_ratio"] = penalty_ratio
