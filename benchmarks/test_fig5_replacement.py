"""Figure 5: replacement policy heatmap.

Paper result: the eviction decision is hotness-driven -- the evicting
loop displaces the main loop only when its iteration count rivals the
main loop's, producing a diagonal retention structure (and leaking
access *counts*, not just accesses).
"""

from benchmarks.conftest import banner, run_once
from repro.core import characterize


def test_fig5_replacement_matrix(benchmark):
    main_iters = tuple(range(1, 13))
    evict_iters = tuple(range(0, 13))
    result = run_once(
        benchmark,
        lambda: characterize.measure_replacement(
            main_iters=main_iters, evict_iters=evict_iters, rounds=12
        ),
    )
    banner("Figure 5 -- replacement heatmap "
           "(DSB uops per main-loop pass; 48 = fully resident)")
    print("  main\\evict " + "".join(f"{e:5d}" for e in evict_iters))
    for m in main_iters:
        row = "".join(f"{result.cell(m, e):5.0f}" for e in evict_iters)
        print(f"  M={m:2d}      {row}")

    # The diagonal: hot loops survive pressure that kills cold loops.
    assert result.cell(1, 4) < 10
    assert result.cell(8, 4) > 35
    assert result.cell(12, 6) > 35
    # Monotone along both axes (sampled).
    assert result.cell(8, 12) <= result.cell(8, 4)
    assert result.cell(2, 8) <= result.cell(10, 8)
    benchmark.extra_info["cell_m8_e4"] = result.cell(8, 4)
    benchmark.extra_info["cell_m1_e4"] = result.cell(1, 4)
