"""Extension benchmark: end-to-end square-and-multiply key extraction
over the SMT micro-op cache channel (Section V-B's primitive applied
to the classic code-path side-channel victim)."""

import random

from benchmarks.conftest import banner, run_once
from repro.core.keyextract import MODULUS, KeyExtractor
from repro.cpu.config import CPUConfig


def test_modexp_key_extraction(benchmark):
    def measure():
        extractor = KeyExtractor(nbits=12)
        extractor.calibrate()
        rng = random.Random(41)
        results = []
        for _ in range(4):
            key = (1 << 11) | rng.getrandbits(11)
            results.append(extractor.extract(key))
        return extractor, results

    extractor, results = run_once(benchmark, measure)
    banner("Extension -- modexp key extraction via the SMT uop-cache "
           "channel (Zen config)")
    print(f"  calibrated: 1-iter ~{extractor.d_one:.0f} cyc, "
          f"0-iter ~{extractor.d_zero:.0f} cyc")
    total_bits = 0
    error_bits = 0
    for res in results:
        total_bits += res.nbits
        error_bits += res.bit_errors
        print(f"  key {res.true_key:012b} -> {res.recovered_key:012b} "
              f"({res.bit_errors} bit errors)"
              + ("  exact" if res.exact else ""))
        assert res.modexp_result == pow(0x12345, res.true_key, MODULUS)
    accuracy = 1 - error_bits / total_bits
    print(f"  overall bit accuracy: {accuracy * 100:.1f}%")
    assert accuracy >= 0.75
    benchmark.extra_info["bit_accuracy"] = accuracy
