"""Extension benchmark: the jump-table multi-bit leak the paper
sketches as a bandwidth optimisation ("for example, using a jump
table", Section VI-A).

Compares symbols-per-invocation 1 vs 2 within the same framework: the
2-bit variant halves the victim invocations per byte; whether wall
clock improves depends on the probe cost per group, which this
benchmark reports honestly.
"""

from benchmarks.conftest import banner, run_once
from repro.core.transient_multibit import JumpTableSpectre

SECRET = b"\xa5\x3c"


def test_jump_table_multibit(benchmark):
    def measure():
        out = {}
        for bits in (1, 2):
            attack = JumpTableSpectre(secret=SECRET, bits_per_symbol=bits,
                                      samples=2)
            out[bits] = attack.leak()
        return out

    results = run_once(benchmark, measure)
    banner("Extension -- jump-table transmitter, bits per transient window")
    for bits, stats in results.items():
        print(f"  {bits} bit(s)/window: leaked={stats.leaked.hex()} "
              f"accuracy={stats.byte_accuracy * 100:.0f}% "
              f"cycles={stats.total_cycles} "
              f"rate={stats.bandwidth_kbps:.1f} Kbps")
    for bits, stats in results.items():
        assert stats.leaked == SECRET, f"{bits}-bit variant failed"
    # per-byte victim invocations halve with 2 bits/symbol
    assert 8 // 2 == 4
    benchmark.extra_info["rate_1bit"] = results[1].bandwidth_kbps
    benchmark.extra_info["rate_2bit"] = results[2].bandwidth_kbps
