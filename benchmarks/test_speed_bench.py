"""Stepping-engine speed suite, emitted as a tracked JSON artifact.

``BENCH_speed.json`` (next to this file) is committed to the
repository so the simulation-speed trajectory is visible across PRs.
It records cold (construct + first trial, which *records* under
replay) and warm (steady-state reset-loop) trial throughput for both
stepping backends on the covert-channel receiver workload, plus the
warm replay-over-reference speedup.  The CI ``speed-smoke`` job runs
this file and fails when warm replay drops below **5x** warm
reference -- a deliberately loose floor (the local target asserted in
``test_session_throughput.py`` is 10x) so CI machine jitter does not
flake the gate.  Regenerate with
``pytest benchmarks/test_speed_bench.py --benchmark-only -s``.

Timings are rounded coarsely in the artifact: unlike the simulator's
deterministic cycle counts, host seconds vary run to run, and the
file should churn only when the physics of the engines changes
materially.
"""

import json
import pathlib
import time

from benchmarks.conftest import banner, run_once
from repro.core.covert import ChannelParams, CovertChannel
from repro.cpu.config import CPUConfig

ARTIFACT = pathlib.Path(__file__).with_name("BENCH_speed.json")

WARM_TRIALS = 60

#: CI floor for warm replay-over-reference speedup.
MIN_SPEEDUP = 5.0


def _trial(chan: CovertChannel) -> int:
    """One receiver episode: prime, then the timed probe pass."""
    chan._prime()
    return chan._probe_time()


def _measure(engine: str) -> dict:
    """Cold + warm throughput for one stepping backend."""
    start = time.monotonic()
    chan = CovertChannel(
        ChannelParams(), config=CPUConfig.skylake(engine=engine)
    )
    first = _trial(chan)
    cold_seconds = time.monotonic() - start

    start = time.monotonic()
    results = []
    for _ in range(WARM_TRIALS):
        chan.reset()
        results.append(_trial(chan))
    warm_seconds = time.monotonic() - start

    # Warm trials replay the recorded first trial bit-identically.
    assert all(r == first for r in results), engine
    return {
        "cold_seconds": cold_seconds,
        "warm_trials_per_sec": WARM_TRIALS / warm_seconds,
        "results": results,
        "stats": chan.core.engine_stats(),
    }


def test_speed_artifact(benchmark):
    reference = _measure("reference")
    replay = run_once(benchmark, lambda: _measure("replay"))

    assert replay["results"] == reference["results"]
    assert replay["stats"]["replayed"] > 0
    assert replay["stats"]["bailouts"] == 0

    speedup = (replay["warm_trials_per_sec"]
               / reference["warm_trials_per_sec"])
    banner("Engine speed -- covert receiver loop, cold + warm")
    for name, m in (("reference", reference), ("replay", replay)):
        print(f"  {name:<10} cold {m['cold_seconds']:6.2f}s   "
              f"warm {m['warm_trials_per_sec']:9.1f} trials/s")
    print(f"  warm speedup: {speedup:.1f}x  (CI floor {MIN_SPEEDUP:.0f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"warm replay throughput fell below {MIN_SPEEDUP:.0f}x warm "
        f"reference (got {speedup:.1f}x)"
    )

    doc = {
        "workload": f"covert receiver loop, {WARM_TRIALS} warm trials",
        "reference": {
            "cold_seconds": round(reference["cold_seconds"], 2),
            "warm_trials_per_sec": round(
                reference["warm_trials_per_sec"], -1),
        },
        "replay": {
            "cold_seconds": round(replay["cold_seconds"], 2),
            "warm_trials_per_sec": round(
                replay["warm_trials_per_sec"], -3),
        },
        "warm_speedup": round(speedup, -1),
        "min_speedup": MIN_SPEEDUP,
    }
    ARTIFACT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {ARTIFACT}")

    benchmark.extra_info["warm_speedup"] = speedup
    benchmark.extra_info["replay_warm_trials_per_sec"] = (
        replay["warm_trials_per_sec"]
    )
