"""Figure 10: the micro-op cache timing signal under CPUID, LFENCE and
no fencing at the authorization check.

Paper result: a clear signal with no fence, a *persisting* signal with
LFENCE (the variant-2 bypass), and no signal with CPUID.
"""

from benchmarks.conftest import banner, run_once
from repro.core.transient import LfenceBypass


def test_fig10_fence_comparison(benchmark):
    signals = run_once(benchmark, lambda: LfenceBypass().figure10(rounds=8))
    banner("Figure 10 -- variant-2 signal vs synchronisation primitive")
    for name in ("none", "lfence", "cpuid"):
        sig = signals[name]
        print(f"  {name:7s}: secret=0 probe {sig.timing.hit_mean:8.1f} cyc, "
              f"secret=1 probe {sig.timing.miss_mean:8.1f} cyc, "
              f"signal {sig.signal:8.1f} cyc")
    assert signals["none"].signal > 100
    assert signals["lfence"].signal > 100  # LFENCE bypassed
    assert abs(signals["cpuid"].signal) < 50  # CPUID kills it
    assert signals["lfence"].signal > 0.5 * signals["none"].signal
    benchmark.extra_info["signal_none"] = signals["none"].signal
    benchmark.extra_info["signal_lfence"] = signals["lfence"].signal
    benchmark.extra_info["signal_cpuid"] = signals["cpuid"].signal
