"""Contention suite: the resource x sharing-mode slowdown matrix and
the two non-DSB covert channels, emitted as a tracked JSON artifact.

``BENCH_contention.json`` (next to this file) is committed to the
repository so the performance trajectory of the contention suite is
visible across PRs: the simulator is deterministic, so every field in
the artifact is stable until a template or a latency model changes --
and then the diff shows exactly which cells moved.  Run with
``pytest benchmarks/test_contention_bench.py --benchmark-only -s`` to
regenerate it.
"""

import json
import pathlib

from benchmarks.conftest import banner, run_once
from repro.core.report import CONTENTION_MODES, table1_row
from repro.harness.contention import format_matrix, run_contention

ARTIFACT = pathlib.Path(__file__).with_name("BENCH_contention.json")


def _regenerate():
    matrix, _, _ = run_contention(trials=1, cache=None)
    rows = [table1_row(mode) for mode in CONTENTION_MODES]
    return matrix, rows


def test_contention_matrix_and_channels(benchmark):
    matrix, rows = run_once(benchmark, _regenerate)

    banner("Contention matrix -- signed slowdown per cell")
    print(format_matrix(matrix))
    banner("Non-DSB covert channels -- Table-I-format rows")
    print(f"  {'Mode':32s} {'BitErr':>8s} {'Kbit/s':>10s} {'w/ECC':>10s}")
    for row in rows:
        print("  " + row.format())

    # Shape: every conflict diagonal has a clearly positive mode and
    # every disjoint negative control stays near zero.
    for resource, per_mode in matrix.items():
        best = max(c["conflict"]["slowdown"] for c in per_mode.values())
        assert best > 0.1, resource
        for cells in per_mode.values():
            assert abs(cells["disjoint"]["slowdown"]) < 0.25, resource
    for row in rows:
        assert row.error_rate < 0.15
        assert row.bandwidth_kbps > 100

    # The tracked artifact: deterministic fields only, so the file
    # churns exactly when the measured physics does.
    doc = {
        "matrix": {
            resource: {
                mode: {
                    variant: {
                        "baseline_cycles": cell["baseline_cycles"],
                        "contended_cycles": cell["contended_cycles"],
                        "slowdown": round(cell["slowdown"], 4),
                    }
                    for variant, cell in cells.items()
                }
                for mode, cells in per_mode.items()
            }
            for resource, per_mode in matrix.items()
        },
        "channels": [
            {
                "mode": row.mode,
                "error_rate": round(row.error_rate, 4),
                "bandwidth_kbps": round(row.bandwidth_kbps, 2),
                "corrected_bandwidth_kbps": round(
                    row.corrected_bandwidth_kbps, 2
                ),
            }
            for row in rows
        ],
    }
    ARTIFACT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {ARTIFACT}")

    benchmark.extra_info["itlb_kbps"] = rows[0].bandwidth_kbps
    benchmark.extra_info["sb_kbps"] = rows[1].bandwidth_kbps
    benchmark.extra_info["uop_cache_smt_slowdown"] = (
        matrix["uop_cache"]["smt"]["conflict"]["slowdown"]
    )
