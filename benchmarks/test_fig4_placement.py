"""Figure 4: placement rules.

Paper result: a 32-byte region may hold at most 18 micro-ops (3 lines
x 6 slots); 2-region loops stream up to 18 uops/region then fall off a
cliff; 4-region loops cap at 12, 8-region loops at 6.
"""

from benchmarks.conftest import banner, run_once
from repro.core import characterize


def test_fig4_placement_rules(benchmark):
    result = run_once(
        benchmark,
        lambda: characterize.measure_placement(
            region_counts=(2, 4, 8),
            uop_counts=tuple(range(1, 25)),
            iters=10,
        ),
    )
    banner("Figure 4 -- placement rules (DSB uops/iter vs uops/region)")
    header = "  uops/region " + "".join(
        f"{n:>12d}-regions" for n in result.regions
    )
    print(header)
    for i, uops in enumerate(result.uops_per_region):
        row = "".join(
            f"{result.dsb_uops[n][i]:20.1f}" for n in result.regions
        )
        print(f"  {uops:11d} {row}")

    def series(n):
        return dict(zip(result.uops_per_region, result.dsb_uops[n]))

    s2, s4, s8 = series(2), series(4), series(8)
    print(f"  2-region cliff after 18 uops: {s2[18]:.1f} -> {s2[19]:.1f}")
    print(f"  4-region peak at 12 uops: {s4[12]:.1f}, at 13: {s4[13]:.1f}")
    print(f"  8-region peak at 6 uops: {s8[6]:.1f}, at 7: {s8[7]:.1f}")
    assert s2[18] > 5 * max(s2[19], 1)
    # past the per-region capacity, partial hotness retention keeps
    # some delivery alive; the drop is still pronounced
    assert s4[12] > 1.5 * max(s4[13], 1)
    assert s8[6] > 2 * max(s8[7], 1)
    benchmark.extra_info["cliff_2regions"] = 18
