"""Benchmark-harness helpers.

Every benchmark regenerates one table or figure of the paper.  The
simulated experiments are deterministic and expensive, so each runs
exactly once (``pedantic(rounds=1)``); pytest-benchmark reports the
wall-clock cost of regenerating the artifact while the printed output
carries the actual rows/series, mirroring what the paper reports.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> None:
    """Print a section header for the regenerated artifact."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
