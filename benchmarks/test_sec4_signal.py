"""Section IV: the tiger/zebra timing signal.

Paper result: the generated exploit code yields a cleanly separable
binary signal -- mean hit/miss difference of 218.4 cycles with a
standard deviation of 27.8 on their hardware.  We report the analogous
statistics of our simulated probe.
"""

from benchmarks.conftest import banner, run_once
from repro.core.covert import ChannelParams, CovertChannel


def test_sec4_probe_signal(benchmark):
    def measure():
        chan = CovertChannel(ChannelParams(calibration_rounds=16))
        return chan.calibrate()

    timing = run_once(benchmark, measure)
    banner("Section IV -- tiger probe timing signal")
    print(f"  hit mean:  {timing.hit_mean:8.1f} cycles")
    print(f"  miss mean: {timing.miss_mean:8.1f} cycles")
    print(f"  delta:     {timing.delta:8.1f} cycles "
          f"(paper: 218.4)")
    print(f"  std dev:   {timing.delta_sd:8.1f} cycles (paper: 27.8)")
    print(f"  separable: {timing.separable}")
    assert timing.separable
    assert timing.delta > 5 * max(timing.delta_sd, 1.0)
    benchmark.extra_info["delta_cycles"] = timing.delta
    benchmark.extra_info["delta_sd"] = timing.delta_sd
