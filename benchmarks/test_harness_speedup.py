"""Harness acceptance benchmarks: parallel speedup, warm-cache replay,
and end-to-end numeric parity with the serial characterization path.

- A ``--jobs 4`` characterize sweep must beat serial wall-clock on a
  multi-core runner (skipped gracefully on a single-CPU box).
- An immediately repeated run against the same cache must execute
  **zero** simulations -- everything replayed from the store.
- The batch study must be numerically identical to the serial
  ``measure_*`` path, point for point (simulation determinism is the
  regression oracle).
"""

import os
import time

import pytest

from benchmarks.conftest import banner, run_once
from repro.core import characterize
from repro.harness import ResultCache, run_jobs
from repro.harness.experiments import characterize_sweeps, run_characterize


def _fig3a_jobs():
    # Enough work per job for pool overheads to amortise.
    return characterize_sweeps(fast=False)["fig3a_size"].jobs()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs >= 2 CPUs",
)
def test_parallel_beats_serial(benchmark):
    jobs = _fig3a_jobs()

    start = time.monotonic()
    serial_outcomes, _ = run_jobs(jobs, workers=1, cache=None)
    serial_seconds = time.monotonic() - start

    def parallel():
        return run_jobs(jobs, workers=4, cache=None)

    parallel_outcomes, summary = run_once(benchmark, parallel)
    parallel_seconds = summary.wall_seconds

    banner("Harness speedup -- Figure 3a sweep, serial vs 4 workers")
    print(f"  serial:   {serial_seconds:8.2f}s for {len(jobs)} jobs")
    print(f"  parallel: {parallel_seconds:8.2f}s "
          f"({serial_seconds / max(parallel_seconds, 1e-9):.2f}x)")

    assert [o.result for o in parallel_outcomes] == [
        o.result for o in serial_outcomes
    ]
    assert parallel_seconds < serial_seconds
    benchmark.extra_info["speedup"] = serial_seconds / parallel_seconds


def test_warm_cache_executes_nothing(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    jobs = _fig3a_jobs()

    _, cold = run_jobs(jobs, workers=2, cache=cache)
    assert cold.executed == len(jobs)

    warm_outcomes, warm = run_once(
        benchmark, lambda: run_jobs(jobs, workers=2, cache=cache)
    )
    banner("Harness warm-cache replay -- Figure 3a sweep")
    print(f"  cold: {cold.format()}")
    print(f"  warm: {warm.format()}")

    assert warm.executed == 0, "warm re-run must run zero simulations"
    assert warm.cached == len(jobs)
    assert warm.failed == 0
    assert all(o.from_cache for o in warm_outcomes)
    assert warm.wall_seconds < max(1.0, cold.wall_seconds / 5)


def test_batch_matches_serial_fast_study(benchmark, tmp_path):
    """Acceptance: ``python -m repro batch characterize --fast --jobs 4``
    equals the serial path, figure by figure, number by number."""
    workers = 4 if (os.cpu_count() or 1) >= 2 else 1
    figures, _, summary = run_once(
        benchmark,
        lambda: run_characterize(
            fast=True, workers=workers, cache=ResultCache(tmp_path / "cache"),
        ),
    )

    sweeps = characterize_sweeps(fast=True)
    serial_3a = characterize.measure_size(
        sizes=sweeps["fig3a_size"].axes["n"], iters=8
    )
    serial_3b = characterize.measure_associativity(
        ways=sweeps["fig3b_associativity"].axes["n"], iters=8
    )
    serial_4 = characterize.measure_placement(
        region_counts=tuple(sweeps["fig4_placement"].axes["nregions"]),
        uop_counts=tuple(sweeps["fig4_placement"].axes["uops"]),
        iters=8,
    )
    serial_5 = characterize.measure_replacement(
        main_iters=tuple(sweeps["fig5_replacement"].axes["main_iters"]),
        evict_iters=tuple(sweeps["fig5_replacement"].axes["evict_iters"]),
        rounds=10,
    )
    serial_6 = characterize.measure_smt_partitioning(
        sizes=tuple(sweeps["fig6_smt"].axes["n"]), iters=8
    )
    serial_7 = characterize.measure_partition_geometry(
        sweep_sets=tuple(sweeps["fig7_sweep"].axes["set_index"]),
        group_counts=tuple(sweeps["fig7_groups"].axes["n_groups"]),
        iters=8,
    )

    banner("Harness/serial parity -- full --fast characterization study")
    print(f"  batch: {summary.format()}")
    assert figures["fig3a_size"].y == serial_3a.y
    assert figures["fig3b_associativity"].y == serial_3b.y
    assert figures["fig4_placement"].dsb_uops == serial_4.dsb_uops
    assert figures["fig5_replacement"].matrix == serial_5.matrix
    assert figures["fig6_smt"].single_thread == serial_6.single_thread
    assert figures["fig6_smt"].smt == serial_6.smt
    geo = figures["fig7_geometry"]
    assert geo.sweep_t1_mite == serial_7.sweep_t1_mite
    assert geo.sweep_t2_mite == serial_7.sweep_t2_mite
    assert geo.groups_single == serial_7.groups_single
    assert geo.groups_smt == serial_7.groups_smt
    print("  parity: all Figure 3-7 series identical")


def test_table1_batch_matches_serial(benchmark):
    """The four Table I rows computed as parallel jobs equal the serial
    ``report.table1`` output exactly."""
    from repro.core.report import table1
    from repro.harness.experiments import run_table1

    payload = b"uop!"
    serial_rows = table1(payload)
    rows, _, summary = run_once(
        benchmark,
        lambda: run_table1(payload, workers=4, cache=None),
    )
    banner("Harness/serial parity -- Table I")
    print(f"  batch: {summary.format()}")
    assert rows == serial_rows
