"""Figure 3: micro-op cache size (3a) and associativity (3b).

Paper result: legacy-decode micro-ops jump once the loop exceeds 256
32-byte regions (=> 256 lines), and once more than 8 same-set regions
contend (=> 8 ways, hence 32 sets).
"""

from benchmarks.conftest import banner, run_once
from repro.core import characterize


def test_fig3a_cache_size(benchmark):
    result = run_once(
        benchmark,
        lambda: characterize.measure_size(
            sizes=tuple(range(16, 385, 16)), iters=10
        ),
    )
    banner("Figure 3a -- micro-op cache size "
           "(legacy-decode uops/iteration vs loop regions)")
    for x, y in zip(result.x, result.y):
        print(f"  regions={x:4d}  legacy uops/iter={y:10.1f}")
    knee = result.knee()
    print(f"  measured capacity knee: {knee} regions (paper: 256)")
    benchmark.extra_info["knee_regions"] = knee
    assert 256 <= knee <= 288


def test_fig3b_associativity(benchmark):
    result = run_once(
        benchmark,
        lambda: characterize.measure_associativity(
            ways=tuple(range(1, 15)), iters=10
        ),
    )
    banner("Figure 3b -- associativity "
           "(legacy-decode uops/iteration vs same-set regions)")
    for x, y in zip(result.x, result.y):
        print(f"  ways={x:3d}  legacy uops/iter={y:8.2f}")
    below = max(y for x, y in zip(result.x, result.y) if x <= 8)
    above = min(y for x, y in zip(result.x, result.y) if x >= 10)
    print(f"  <=8 ways: {below:.2f}/iter, >=10 ways: {above:.2f}/iter "
          "(paper: rises past 8)")
    benchmark.extra_info["max_below_8"] = below
    benchmark.extra_info["min_above_9"] = above
    assert below < above
