"""Figure 9: tuning set/way occupancy and sample count.

Paper result: bandwidth rises as sets/samples shrink (peaking over
1.2 Mbps at 1 set / few samples, with ~15% errors); the error rate
drops below 1% once 8 sets are probed; the way count has little effect
on accuracy.
"""

from benchmarks.conftest import banner, run_once
from repro.core.covert import ChannelParams, tune


def test_fig9_channel_tuning(benchmark):
    payload = b"\x5a\xa5\x3c\xc3"
    results = run_once(benchmark, lambda: tune(payload))
    banner("Figure 9 -- bandwidth and error rate vs nsets/nways/samples")
    for axis in ("nsets", "nways", "samples"):
        print(f"  sweep over {axis} (others at operating point):")
        for value, bw, err in results[axis]:
            print(f"    {axis}={value:3d}  bandwidth={bw:8.0f} Kbps  "
                  f"error={err * 100:6.2f}%")

    nsets = {v: (bw, err) for v, bw, err in results["nsets"]}
    samples = {v: (bw, err) for v, bw, err in results["samples"]}
    # bandwidth falls as sets grow; error falls as sets grow
    assert nsets[1][0] > nsets[16][0]
    assert nsets[16][1] <= nsets[1][1]
    assert nsets[8][1] < 0.05  # paper: <1% at 8 sets (we allow 5%)
    # more samples: lower bandwidth
    assert samples[1][0] > samples[20][0]
    benchmark.extra_info["bw_1set_kbps"] = nsets[1][0]
    benchmark.extra_info["err_8sets"] = nsets[8][1]
