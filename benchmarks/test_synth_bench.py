"""Attack-synthesis acceptance suite, emitted as a tracked artifact.

``BENCH_synth.json`` (next to this file) is committed so the search's
quality trajectory is visible across PRs.  One seeded
``repro.synth`` run under a fixed budget drives its finalists through
an in-process coordinator fleet (2 workers) and must:

- **rediscover the paper's operating point**: the best measured
  candidate's bandwidth beats the hand-written covert channel's
  Table-I row (same simulator, same noise seed);
- **filter statically**: the assemble/lint/taint stages reject at
  least half of all raw candidates before any simulation;
- **rank usefully**: Spearman correlation between the static
  taint-derived rate and the measured bandwidth over all measured
  candidates is positive;
- **dedupe perfectly**: an identical warm rerun against the same
  fleet executes zero new jobs.

The artifact records the per-generation funnel, the best fitness
under every objective (scored from the same measured rows -- one
search serves all three), and the fleet's executed/coalesced
counters.  Regenerate with
``pytest benchmarks/test_synth_bench.py --benchmark-only -s``.
"""

import json
import pathlib
import time

from benchmarks.conftest import banner, run_once
from repro.core.report import table1_row
from repro.serve.testing import ClusterThread
from repro.synth import (
    OBJECTIVES,
    ServeEvaluator,
    SynthConfig,
    run_search,
    spearman,
)

ARTIFACT = pathlib.Path(__file__).with_name("BENCH_synth.json")

#: The fixed acceptance budget: five 24-candidate generations.
BUDGET = 120


def _search_once(cluster):
    config = SynthConfig(budget=BUDGET, detector_bits=4)
    evaluator = ServeEvaluator(cluster.client(), max_in_flight=8)
    start = time.monotonic()
    result = run_search(config, evaluator)
    elapsed = time.monotonic() - start
    return config, evaluator, result, elapsed


def test_synth_search_acceptance(benchmark):
    with ClusterThread(workers=2, worker_processes=1,
                       worker_mode="thread") as cluster:
        config, evaluator, result, elapsed = run_once(
            benchmark, lambda: _search_once(cluster))

        # identical warm rerun: every measurement answered from the
        # fleet's shared store, zero new executions
        warm = ServeEvaluator(cluster.client(), max_in_flight=8)
        rerun = run_search(config, warm)
        counters = cluster.client().metrics()["counters"]

    best = result.best
    assert best is not None and best.row is not None

    baseline = table1_row("Same address space", b"uop cache leaks!",
                          noise_seed=config.noise_seed)
    assert best.row["bandwidth_kbps"] >= baseline.bandwidth_kbps, (
        f"search best {best.row['bandwidth_kbps']:.1f} Kbit/s under the "
        f"hand-written Table-I row {baseline.bandwidth_kbps:.1f}"
    )

    assert result.static_reject_rate >= 0.5, (
        f"static stages rejected only {result.static_reject_rate:.2f} "
        f"of {result.raw_total} raw candidates (need >= 0.5)"
    )

    static = [c.static_rate_kbps for c in result.measured]
    measured = [c.row["bandwidth_kbps"] for c in result.measured]
    rho = spearman(static, measured)
    assert rho > 0, (
        f"static rank must predict measured rank (spearman {rho:.3f} "
        f"over {len(static)} candidates)"
    )

    assert warm.stats.executed == 0, warm.stats.as_dict()
    assert rerun.best.key == best.key

    per_objective = {
        name: round(max((obj(c.row) for c in result.measured),
                        default=0.0), 1)
        for name, obj in OBJECTIVES.items()
    }

    banner(f"Attack synthesis -- budget {BUDGET}, 2-worker fleet")
    for gen in result.generations:
        print(f"  gen {gen.generation}: raw={gen.raw:3d} "
              f"rejected={gen.rejected_assembly + gen.rejected_lint:3d} "
              f"static={gen.static:3d} measured={gen.measured} "
              f"deduped={gen.deduped} best={gen.best_fitness:.1f}")
    print(f"  reject rate: {result.static_reject_rate:.2f} "
          f"({result.rejected_total}/{result.raw_total})")
    print(f"  best: {best.row['family']}"
          + (f"/{best.genome.get('resource')}"
             if best.genome.get("resource") else "")
          + f" {best.row['bandwidth_kbps']:.1f} Kbit/s "
          f"(hand-written Table-I row: {baseline.bandwidth_kbps:.1f})")
    print(f"  spearman(static, measured) = {rho:.3f} over n={len(static)}")
    print(f"  fleet: executed={counters['executed']} "
          f"coalesced={counters['coalesced']}; warm rerun executed 0")
    print(f"  cold search: {elapsed:.1f}s")

    doc = {
        "workload": f"seeded synth search, budget {BUDGET}, "
                    "2-worker fleet",
        "budget": BUDGET,
        "seed": config.seed,
        "generations": [g.as_dict() for g in result.generations],
        "raw_total": result.raw_total,
        "rejected_total": result.rejected_total,
        "static_reject_rate": round(result.static_reject_rate, 3),
        "evaluated": evaluator.stats.submitted,
        "deduped": sum(g.deduped for g in result.generations),
        "best": per_objective,
        "best_key": best.key,
        "best_family": best.row["family"],
        "best_bandwidth_kbps": round(best.row["bandwidth_kbps"], 1),
        "table1_baseline_kbps": round(baseline.bandwidth_kbps, 1),
        "spearman_static_vs_measured": round(rho, 3),
        "serve_counters": {
            "executed": counters["executed"],
            "coalesced": counters["coalesced"],
        },
        "warm_rerun_executed": warm.stats.executed,
        # Host seconds jitter run to run; keep one decimal so the
        # tracked file churns only on material slowdowns.
        "search_seconds": round(elapsed, 1),
    }
    ARTIFACT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {ARTIFACT}")

    benchmark.extra_info["search_seconds"] = elapsed
    benchmark.extra_info["best_bandwidth_kbps"] = best.row["bandwidth_kbps"]
