"""Table I: bandwidth and error-rate comparison of the four channels.

Paper numbers (Coffee Lake / Zen hardware):

    Same address space               0.22%   965.59 Kbps  (785.56 ECC)
    Same address space (User/Kernel) 3.27%   110.96 Kbps  ( 85.20 ECC)
    Cross-thread (SMT)               5.59%   250.00 Kbps  (168.58 ECC)
    Transient Execution Attack       0.72%    17.60 Kbps  ( 14.64 ECC)

Expected shape: same-address-space is fastest; the kernel and SMT
channels are slower and noisier; the transient channel is the slowest.
"""

from benchmarks.conftest import banner, run_once
from repro.core.report import table1


def test_table1_channel_comparison(benchmark):
    rows = run_once(benchmark, lambda: table1(payload=b"uop cache leaks!"))
    banner("Table I -- bandwidth and error rate (simulated)")
    print(f"  {'Mode':32s} {'BitErr':>8s} {'Kbit/s':>10s} {'w/ECC':>10s}")
    for row in rows:
        print("  " + row.format())

    by_mode = {r.mode: r for r in rows}
    same = by_mode["Same address space"]
    kernel = by_mode["Same address space (User/Kernel)"]
    smt = by_mode["Cross-thread (SMT)"]
    transient = by_mode["Transient Execution Attack"]

    # Shape assertions mirroring the paper's ordering.  One recorded
    # divergence (EXPERIMENTS.md): the paper's transient channel is its
    # slowest mode (17.6 Kbps) because real hardware needs many noisy
    # retries per bit; our deterministic simulator resolves each
    # transient bit in a handful of episodes, so its rate is not
    # asserted against the others.
    assert same.bandwidth_kbps > kernel.bandwidth_kbps
    assert transient.bandwidth_kbps > 0
    for row in rows:
        assert row.error_rate < 0.15
        assert row.corrected_bandwidth_kbps < row.bandwidth_kbps
    benchmark.extra_info["same_as_kbps"] = same.bandwidth_kbps
    benchmark.extra_info["kernel_kbps"] = kernel.bandwidth_kbps
    benchmark.extra_info["smt_kbps"] = smt.bandwidth_kbps
    benchmark.extra_info["transient_kbps"] = transient.bandwidth_kbps
