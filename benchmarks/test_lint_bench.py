"""Taint-analyzer wall-time suite, emitted as a tracked JSON artifact.

``BENCH_lint.json`` (next to this file) is committed to the repository
so the static analyzer's cost trajectory is visible across PRs.  It
records the wall-clock time of one full secret-flow pass -- footprint
analysis plus ``verify_secret_claims`` -- over the twelve
claim-carrying lint targets, together with each target's static
channel-capacity bound.  The pass must stay under **1 second** for
the whole corpus: the analysis runs inside every session preflight
and as a synthesis fitness function, so it has to stay cheap.  Target
*building* (assembling drivers) is excluded from the timed section.
Regenerate with
``pytest benchmarks/test_lint_bench.py --benchmark-only -s``.
"""

import json
import pathlib
import time

from benchmarks.conftest import banner, run_once
from repro.lint import analyze, verify_secret_claims
from repro.lint.runner import TARGETS

ARTIFACT = pathlib.Path(__file__).with_name("BENCH_lint.json")

#: Corpus budget for one full static taint pass, in seconds.
BUDGET_SECONDS = 1.0

#: The claim-carrying targets (every driver with a SecretClaim).
TAINT_TARGETS = (
    "tigerzebra", "covert", "smt", "crossdomain", "spectre",
    "classic", "lfence", "bti", "jumptable", "keyextract",
    "contention-itlb", "contention-sb",
)


def _analyze_corpus(built):
    """One full static pass; returns (elapsed, per-target capacities)."""
    start = time.monotonic()
    capacities = {}
    for name, target in built:
        report = analyze(target.program, target.config)
        taint = verify_secret_claims(report, target.secrets)
        capacities[name] = round(taint.capacity_bits, 3)
    return time.monotonic() - start, capacities


def test_taint_analyzer_budget(benchmark):
    built = [(name, TARGETS[name]()) for name in TAINT_TARGETS]
    assert all(t.secrets for _, t in built), "every target must claim"

    elapsed, capacities = run_once(
        benchmark, lambda: _analyze_corpus(built)
    )

    banner("Static taint pass -- 12-target corpus")
    for name, bits in sorted(capacities.items()):
        print(f"  {name:<16} capacity <= {bits:5.1f} bit(s)")
    print(f"  corpus pass: {elapsed:.3f}s  (budget {BUDGET_SECONDS:.1f}s)")

    assert elapsed < BUDGET_SECONDS, (
        f"static taint pass took {elapsed:.3f}s over the "
        f"{len(built)}-target corpus (budget {BUDGET_SECONDS:.1f}s)"
    )
    # The headline acceptance numbers ride along in the artifact.
    assert capacities["keyextract"] > 0
    assert capacities["classic"] == 0.0

    doc = {
        "workload": "footprint + secret-flow pass, 12-target corpus",
        "budget_seconds": BUDGET_SECONDS,
        # Host seconds jitter run to run; keep one decimal so the
        # tracked file churns only on material slowdowns.
        "corpus_seconds": round(elapsed, 1),
        "capacity_bits": capacities,
    }
    ARTIFACT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {ARTIFACT}")

    benchmark.extra_info["corpus_seconds"] = elapsed
