"""Figure 7: deconstructing the SMT partitioning mechanism.

Paper result: (a) both threads keep full 8-way associativity wherever
T1 probes -- so the cache is not way-partitioned; (b) each thread can
stream exactly 16 8-way groups in SMT mode (32 single-threaded), so the
partition is 16 private 8-way sets per thread.
"""

from benchmarks.conftest import banner, run_once
from repro.core import characterize


def test_fig7_partition_geometry(benchmark):
    result = run_once(
        benchmark,
        lambda: characterize.measure_partition_geometry(
            sweep_sets=tuple(range(0, 32, 2)),
            group_counts=(4, 8, 12, 16, 20, 24, 28, 32, 36),
            iters=8,
        ),
    )
    banner("Figure 7a -- T1 sweeping sets vs T2 pinned to set 0 "
           "(legacy uops/iter; ~0 everywhere = no contention)")
    for s, t1, t2 in zip(result.sweep_sets, result.sweep_t1_mite,
                         result.sweep_t2_mite):
        print(f"  t1-set={s:3d}  t1={t1:7.1f}  t2={t2:7.1f}")
    assert max(result.sweep_t1_mite) < 5
    assert max(result.sweep_t2_mite) < 5

    banner("Figure 7b -- 8-way groups streamable "
           "(single-thread vs SMT; knee 32 vs 16)")
    for n, st, smt in zip(result.group_counts, result.groups_single,
                          result.groups_smt):
        print(f"  groups={n:3d}  single={st:9.1f}  smt={smt:9.1f}")
    single_fit = max(n for n, y in zip(result.group_counts,
                                       result.groups_single) if y < 80)
    smt_fit = max(n for n, y in zip(result.group_counts,
                                    result.groups_smt) if y < 80)
    print(f"  single-thread: {single_fit} groups, SMT: {smt_fit} "
          "(paper: 32 vs 16)")
    assert single_fit == 32
    assert smt_fit == 16
    benchmark.extra_info["groups_single"] = single_fit
    benchmark.extra_info["groups_smt"] = smt_fit
