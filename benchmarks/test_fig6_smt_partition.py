"""Figure 6: SMT partitioning of the Intel micro-op cache.

Paper result: with a co-resident SMT thread, T1's usable capacity is
exactly half the physical size, regardless of whether T2 executes
PAUSE or pointer-chasing loads.
"""

from benchmarks.conftest import banner, run_once
from repro.core import characterize


def _series(t2_kind):
    return characterize.measure_smt_partitioning(
        sizes=tuple(range(32, 289, 32)), iters=8, t2_kind=t2_kind
    )


def test_fig6a_t2_pause(benchmark):
    result = run_once(benchmark, lambda: _series("pause"))
    banner("Figure 6a -- T1 capacity with T2 executing PAUSE")
    for size, st, smt in zip(result.sizes, result.single_thread, result.smt):
        print(f"  regions={size:4d}  single={st:9.1f}  smt={smt:9.1f}")
    fits_single = [s for s, y in zip(result.sizes, result.single_thread)
                   if y < 5]
    fits_smt = [s for s, y in zip(result.sizes, result.smt) if y < 5]
    print(f"  single-thread capacity ~{max(fits_single)} regions, "
          f"SMT ~{max(fits_smt)} (paper: 256 vs 128)")
    assert max(fits_single) >= 224
    assert 96 <= max(fits_smt) <= 128
    benchmark.extra_info["smt_capacity_regions"] = max(fits_smt)


def test_fig6b_t2_pointer_chasing(benchmark):
    result = run_once(benchmark, lambda: _series("chase"))
    banner("Figure 6b -- T1 capacity with T2 pointer-chasing")
    for size, st, smt in zip(result.sizes, result.single_thread, result.smt):
        print(f"  regions={size:4d}  single={st:9.1f}  smt={smt:9.1f}")
    fits_smt = [s for s, y in zip(result.sizes, result.smt) if y < 5]
    # identical partition no matter what T2 runs: static partitioning
    assert 96 <= max(fits_smt) <= 128
    benchmark.extra_info["smt_capacity_regions"] = max(fits_smt)
