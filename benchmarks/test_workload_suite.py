"""Background check (Section II-B) and mitigation pricing on the
benign workload suite.

Paper context: when the micro-op cache was introduced it delivered
~80% average hit rates and close to 100% on hotspots; Section VIII
predicts that flushing it at domain crossings "could severely degrade
performance".  Both are quantified here on the suite.
"""

from benchmarks.conftest import banner, run_once
from repro.cpu.config import CPUConfig
from repro.workloads import run_suite, run_workload


def test_workload_hit_rates(benchmark):
    results = run_once(benchmark, lambda: run_suite(scale=2))
    banner("Workload suite -- micro-op cache behaviour (Skylake config)")
    print(f"  {'workload':16s} {'cycles':>9s} {'IPC':>6s} {'DSB hit':>9s} "
          f"{'mispred':>8s}")
    for name, r in results.items():
        print(f"  {name:16s} {r.cycles:9d} {r.ipc:6.2f} "
              f"{r.dsb_hit_rate * 100:8.1f}% {r.mispredict_rate * 100:7.1f}%")
    avg = sum(r.dsb_hit_rate for r in results.values()) / len(results)
    print(f"  mean hit rate: {avg * 100:.1f}% "
          "(paper: ~80% average, ~100% hotspots)")
    assert results["hot_loop"].dsb_hit_rate > 0.95
    assert results["large_code"].dsb_hit_rate < 0.2
    assert 0.6 < avg < 1.0
    benchmark.extra_info["mean_hit_rate"] = avg


def test_mitigation_overhead_on_workloads(benchmark):
    def measure():
        base = CPUConfig.skylake()
        flush = CPUConfig.skylake(flush_uop_cache_on_domain_crossing=True)
        rows = {}
        for name in ("hot_loop", "hash_loop", "interpreter",
                     "syscall_heavy"):
            c_base = run_workload(name, base, scale=2).cycles
            c_flush = run_workload(name, flush, scale=2).cycles
            rows[name] = c_flush / c_base
        return rows

    rows = run_once(benchmark, measure)
    banner("Mitigation cost -- flush-at-domain-crossing slowdown")
    for name, slowdown in rows.items():
        print(f"  {name:16s} {slowdown:6.2f}x")
    assert rows["syscall_heavy"] > 1.5  # pays on every crossing
    assert rows["hot_loop"] < 1.05  # free without crossings
    benchmark.extra_info["syscall_heavy_slowdown"] = rows["syscall_heavy"]
