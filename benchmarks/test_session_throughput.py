"""Session-layer acceptance benchmark: trial throughput.

The attack-session layer reuses one ``Core`` across trials via
``reset()`` -- keeping the assembled program and the front end's
decode memos -- instead of re-assembling and rebuilding per trial.
On the covert-channel receiver loop (prime the tiger footprint, run
the timed probe) the reuse path must deliver at least **2x** the
trial throughput of a rebuild-per-trial loop, while producing
bit-identical measurements (reset parity is the oracle that makes
the comparison fair).
"""

import time

from benchmarks.conftest import banner, run_once
from repro.core.covert import ChannelParams, CovertChannel

TRIALS = 40


def _trial(chan: CovertChannel) -> int:
    """One receiver episode: prime, then the timed probe pass."""
    chan._prime()
    return chan._probe_time()


def test_reset_reuse_beats_rebuild(benchmark):
    params = ChannelParams()

    start = time.monotonic()
    rebuild_results = []
    for _ in range(TRIALS):
        chan = CovertChannel(params)
        rebuild_results.append(_trial(chan))
    rebuild_seconds = time.monotonic() - start

    chan = CovertChannel(params)

    def reuse_loop():
        results = []
        for _ in range(TRIALS):
            chan.reset()
            results.append(_trial(chan))
        return results

    reuse_results = run_once(benchmark, reuse_loop)
    reuse_seconds = benchmark.stats.stats.total

    speedup = rebuild_seconds / max(reuse_seconds, 1e-9)
    banner("Session throughput -- covert receiver loop, "
           "rebuild vs reset-reuse")
    print(f"  rebuild/trial: {TRIALS} trials in {rebuild_seconds:6.2f}s "
          f"({TRIALS / rebuild_seconds:7.1f} trials/s)")
    print(f"  reset-reuse:   {TRIALS} trials in {reuse_seconds:6.2f}s "
          f"({TRIALS / reuse_seconds:7.1f} trials/s)")
    print(f"  speedup:       {speedup:.2f}x")

    # Reset parity makes the comparison apples-to-apples: every trial
    # starts from the identical post-construction state on both paths.
    assert reuse_results == rebuild_results
    assert speedup >= 2.0, (
        f"reset-reuse must at least double trial throughput "
        f"(got {speedup:.2f}x)"
    )
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["reuse_seconds"] = reuse_seconds
