"""Session-layer acceptance benchmark: trial throughput.

The attack-session layer reuses one ``Core`` across trials via
``reset()`` -- keeping the assembled program and the front end's
decode memos -- instead of re-assembling and rebuilding per trial.
On the covert-channel receiver loop (prime the tiger footprint, run
the timed probe) the reuse path must deliver at least **2x** the
trial throughput of a rebuild-per-trial loop, while producing
bit-identical measurements (reset parity is the oracle that makes
the comparison fair).
"""

import time

from benchmarks.conftest import banner, run_once
from repro.core.covert import ChannelParams, CovertChannel
from repro.cpu.config import CPUConfig

TRIALS = 40

#: Trials for the engine-speedup comparison; replay throughput is high
#: enough that a larger count costs nothing and steadies the timing.
ENGINE_TRIALS = 60


def _trial(chan: CovertChannel) -> int:
    """One receiver episode: prime, then the timed probe pass."""
    chan._prime()
    return chan._probe_time()


def test_reset_reuse_beats_rebuild(benchmark):
    params = ChannelParams()

    start = time.monotonic()
    rebuild_results = []
    for _ in range(TRIALS):
        chan = CovertChannel(params)
        rebuild_results.append(_trial(chan))
    rebuild_seconds = time.monotonic() - start

    chan = CovertChannel(params)

    def reuse_loop():
        results = []
        for _ in range(TRIALS):
            chan.reset()
            results.append(_trial(chan))
        return results

    reuse_results = run_once(benchmark, reuse_loop)
    reuse_seconds = benchmark.stats.stats.total

    speedup = rebuild_seconds / max(reuse_seconds, 1e-9)
    banner("Session throughput -- covert receiver loop, "
           "rebuild vs reset-reuse")
    print(f"  rebuild/trial: {TRIALS} trials in {rebuild_seconds:6.2f}s "
          f"({TRIALS / rebuild_seconds:7.1f} trials/s)")
    print(f"  reset-reuse:   {TRIALS} trials in {reuse_seconds:6.2f}s "
          f"({TRIALS / reuse_seconds:7.1f} trials/s)")
    print(f"  speedup:       {speedup:.2f}x")

    # Reset parity makes the comparison apples-to-apples: every trial
    # starts from the identical post-construction state on both paths.
    assert reuse_results == rebuild_results
    assert speedup >= 2.0, (
        f"reset-reuse must at least double trial throughput "
        f"(got {speedup:.2f}x)"
    )
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["trials"] = TRIALS
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["reuse_seconds"] = reuse_seconds


def test_replay_engine_speedup(benchmark):
    """The replay engine (superblock replay of recorded call segments)
    must deliver >= 10x the reference interpreter's trial throughput on
    the same reset-loop workload, bit-identically.

    The first trial under replay *records*; the timed loop measures the
    steady state (soft reset + trie replay), which is the regime the
    harness and serve layers live in.
    """

    def warmed_channel(engine: str) -> CovertChannel:
        chan = CovertChannel(
            ChannelParams(), config=CPUConfig.skylake(engine=engine)
        )
        chan.reset()
        _trial(chan)  # records under replay; warms memos under reference
        return chan

    ref = warmed_channel("reference")
    start = time.monotonic()
    ref_results = []
    for _ in range(ENGINE_TRIALS):
        ref.reset()
        ref_results.append(_trial(ref))
    ref_seconds = time.monotonic() - start

    rep = warmed_channel("replay")

    def replay_loop():
        results = []
        for _ in range(ENGINE_TRIALS):
            rep.reset()
            results.append(_trial(rep))
        return results

    rep_results = run_once(benchmark, replay_loop)
    rep_seconds = benchmark.stats.stats.total

    speedup = ref_seconds / max(rep_seconds, 1e-9)
    stats = rep.core.engine_stats()
    banner("Engine throughput -- covert receiver loop, "
           "reference vs replay")
    print(f"  reference: {ENGINE_TRIALS} trials in {ref_seconds:6.2f}s "
          f"({ENGINE_TRIALS / ref_seconds:9.1f} trials/s)")
    print(f"  replay:    {ENGINE_TRIALS} trials in {rep_seconds:6.2f}s "
          f"({ENGINE_TRIALS / rep_seconds:9.1f} trials/s)")
    print(f"  speedup:   {speedup:.1f}x   "
          f"(replayed={stats['replayed']} recorded={stats['recorded']} "
          f"bailouts={stats['bailouts']})")

    # Parity first -- a fast wrong answer is worthless.
    assert rep_results == ref_results
    # The engine must actually be replaying, not re-interpreting.
    assert stats["replayed"] > 0
    assert stats["bailouts"] == 0
    assert speedup >= 10.0, (
        f"replay engine must deliver >= 10x reference trial throughput "
        f"(got {speedup:.1f}x)"
    )
    benchmark.extra_info["engine_speedup"] = speedup
    benchmark.extra_info["reference_seconds"] = ref_seconds
    benchmark.extra_info["replay_seconds"] = rep_seconds
